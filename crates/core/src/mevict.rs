//! mEvict: evicting integrity-tree node blocks and counter blocks from
//! the metadata caches *indirectly*, through carefully chosen data
//! accesses (§VI-A, step 1).
//!
//! Software cannot address metadata, so the attacker picks data blocks
//! whose verification paths load chosen tree node blocks, thrashing the
//! metadata-cache set of the target node `N_s`. For the probe and
//! victim counter blocks (which must miss so their reads actually walk
//! the tree), counter-cache set conflicts are driven the same way.

use crate::error::AttackError;
use metaleak_engine::secmem::SecureMemory;
use metaleak_meta::geometry::NodeId;
use metaleak_sim::addr::CoreId;
use metaleak_sim::clock::Cycles;
use metaleak_sim::trace::Tracer;

/// Evicts one counter block from the counter cache by accessing
/// attacker-owned data blocks whose counter blocks map to the same
/// counter-cache set.
#[derive(Debug, Clone)]
pub struct CounterEvictor {
    /// Attacker data blocks driving the conflicts.
    pub blocks: Vec<u64>,
    target_cb: u64,
}

impl CounterEvictor {
    /// Plans an eviction set for `target_cb`. Candidate counter blocks
    /// are congruent to the target modulo the number of counter-cache
    /// sets and outside the subtrees of every node in `avoid` (so the
    /// drive accesses never reload a monitored tree node).
    ///
    /// # Errors
    /// Fails when the protected region is too small to supply enough
    /// conflicting counter blocks.
    pub fn plan<Tr: Tracer>(
        mem: &SecureMemory<Tr>,
        target_cb: u64,
        avoid: &[NodeId],
    ) -> Result<Self, AttackError> {
        let sets = {
            // Derive the set count from two congruent indices.
            mem_counter_sets(mem)
        };
        let geometry = mem.tree().geometry();
        let total_cbs = geometry.covered();
        let forbidden: Vec<core::ops::Range<u64>> =
            avoid.iter().map(|&n| geometry.attached_under(n)).collect();
        let need = mem.mcaches().counter_ways() * 2;
        let per_cb = crate::sharing::blocks_per_counter_block(mem);
        let mut blocks = Vec::with_capacity(need);
        let mut cb = target_cb % sets;
        while blocks.len() < need && cb < total_cbs {
            let banned = cb == target_cb || forbidden.iter().any(|r| r.contains(&cb));
            if !banned {
                blocks.push(cb * per_cb);
            }
            cb += sets;
        }
        if blocks.len() < need {
            return Err(AttackError::InsufficientEvictionCandidates {
                needed: need,
                found: blocks.len(),
            });
        }
        Ok(CounterEvictor { blocks, target_cb })
    }

    /// The counter block this set evicts.
    pub fn target_cb(&self) -> u64 {
        self.target_cb
    }

    /// Runs the eviction accesses. Returns the cycles spent.
    ///
    /// # Errors
    /// [`AttackError::MeasurementInvalidated`] when the engine rejects
    /// a drive access (interference disturbed the walk); transient.
    pub fn evict<Tr: Tracer>(
        &self,
        mem: &mut SecureMemory<Tr>,
        core: CoreId,
    ) -> Result<Cycles, AttackError> {
        let mut spent = Cycles::ZERO;
        for &b in &self.blocks {
            spent += mem.flush_block(b);
            spent += mem.read(core, b)?.latency;
        }
        Ok(spent)
    }
}

/// Evicts the metadata-cache set of a target tree node by driving
/// verification walks through conflicting *leaf* node blocks.
///
/// Driver counter blocks are chosen as slot 0 of conflicting leaves, so
/// that all driver counter blocks are also congruent in the counter
/// cache: the drivers thrash each other's counters, guaranteeing their
/// accesses keep walking the tree round after round (self-sustaining
/// eviction).
#[derive(Debug, Clone)]
pub struct TreeSetEvictor {
    /// Attacker data blocks driving the conflicts.
    pub driver_blocks: Vec<u64>,
    target: NodeId,
}

impl TreeSetEvictor {
    /// Plans the eviction set for `target`.
    ///
    /// # Errors
    /// Fails when too few conflicting leaves exist outside the target's
    /// subtree (the protected region is too small relative to the tree
    /// cache).
    pub fn plan<Tr: Tracer>(mem: &SecureMemory<Tr>, target: NodeId) -> Result<Self, AttackError> {
        Self::plan_avoiding(mem, target, &[])
    }

    /// Plans an eviction set for `target`'s cache set whose driver
    /// accesses additionally stay outside the subtrees of every node in
    /// `avoid` — used when evicting path nodes without ever reloading a
    /// monitored node. The target's own subtree is always avoided.
    ///
    /// # Errors
    /// Same as [`TreeSetEvictor::plan`].
    pub fn plan_avoiding<Tr: Tracer>(
        mem: &SecureMemory<Tr>,
        target: NodeId,
        avoid: &[NodeId],
    ) -> Result<Self, AttackError> {
        let geometry = mem.tree().geometry();
        let caches = mem.mcaches();
        let target_set = caches.tree_set_index(mem.node_key(target));
        let need = caches.tree_ways() * 2;
        let mut forbidden: Vec<core::ops::Range<u64>> = vec![geometry.attached_under(target)];
        forbidden.extend(avoid.iter().map(|&n| geometry.attached_under(n)));
        let per_cb = crate::sharing::blocks_per_counter_block(mem);
        let mut driver_blocks = Vec::with_capacity(need);
        for leaf_idx in 0..geometry.nodes_at(0) {
            let leaf = NodeId::new(0, leaf_idx);
            if caches.tree_set_index(mem.node_key(leaf)) != target_set {
                continue;
            }
            let cbs = geometry.attached_under(leaf);
            if forbidden.iter().any(|r| r.contains(&cbs.start)) {
                continue; // would reload a monitored node
            }
            driver_blocks.push(cbs.start * per_cb);
            if driver_blocks.len() == need {
                break;
            }
        }
        if driver_blocks.len() < need {
            return Err(AttackError::InsufficientEvictionCandidates {
                needed: need,
                found: driver_blocks.len(),
            });
        }
        Ok(TreeSetEvictor { driver_blocks, target })
    }

    /// The node whose set this evictor thrashes.
    pub fn target(&self) -> NodeId {
        self.target
    }

    /// Runs one eviction round. Returns the cycles spent.
    ///
    /// # Errors
    /// [`AttackError::MeasurementInvalidated`] when the engine rejects
    /// a drive access (interference disturbed the walk); transient.
    pub fn evict<Tr: Tracer>(
        &self,
        mem: &mut SecureMemory<Tr>,
        core: CoreId,
    ) -> Result<Cycles, AttackError> {
        let mut spent = Cycles::ZERO;
        for &b in &self.driver_blocks {
            spent += mem.flush_block(b);
            spent += mem.read(core, b)?.latency;
        }
        Ok(spent)
    }
}

/// The composite mEvict primitive: tree-set eviction of the monitored
/// node `N_s` *and* of every below-target node on the watched
/// verification paths (otherwise those walks would stop early and never
/// reach `N_s`), plus counter eviction for each watched counter block.
#[derive(Debug, Clone)]
pub struct MetaEvictor {
    /// Thrashes the target node's set plus the below-target path-node
    /// sets (deduplicated by cache set).
    pub tree: Vec<TreeSetEvictor>,
    /// Keeps each watched counter block (probe, victim, helper) out of
    /// the counter cache so their accesses exercise the tree.
    pub counters: Vec<CounterEvictor>,
}

impl MetaEvictor {
    /// Plans a full mEvict for monitoring `target`. `path_cbs` lists
    /// every counter block whose verification path must reach the
    /// target each round (the probe's, the victim's, and any
    /// calibration helper's). `extra_avoid` lists nodes monitored by
    /// cooperating attacks whose state this evictor must never disturb
    /// by reloading (e.g. the other set of a covert channel).
    ///
    /// Besides the target's set and the below-target path sets, the
    /// target's *parent* set is also thrashed: this widens the latency
    /// gap between "walk stops at the (cached) target" and "walk
    /// continues past the (evicted) target" to two memory fetches,
    /// well clear of DRAM row-state noise.
    ///
    /// # Errors
    /// Propagates planning failures of the component evictors.
    pub fn plan<Tr: Tracer>(
        mem: &SecureMemory<Tr>,
        target: NodeId,
        path_cbs: &[u64],
        extra_avoid: &[NodeId],
    ) -> Result<Self, AttackError> {
        let geometry = mem.tree().geometry();
        let caches = mem.mcaches();
        // Nodes whose caching state must never be refreshed by drivers:
        // the target, its parent (kept evicted for band separation) and
        // any cooperating monitors' nodes.
        let parent = geometry.parent(target).filter(|p| !geometry.is_root(*p));
        let mut guard: Vec<NodeId> = vec![target];
        guard.extend(parent);
        guard.extend_from_slice(extra_avoid);
        let mut tree = vec![TreeSetEvictor::plan_avoiding(mem, target, &guard)?];
        let mut covered_sets = vec![caches.tree_set_index(mem.node_key(target))];
        if let Some(p) = parent {
            let set = caches.tree_set_index(mem.node_key(p));
            if !covered_sets.contains(&set) {
                tree.push(TreeSetEvictor::plan_avoiding(mem, p, &guard)?);
                covered_sets.push(set);
            }
        }
        let mut counters = Vec::with_capacity(path_cbs.len());
        for &cb in path_cbs {
            for node in geometry.path_to_root(cb) {
                if node.level >= target.level {
                    break;
                }
                let set = caches.tree_set_index(mem.node_key(node));
                if covered_sets.contains(&set) {
                    continue;
                }
                tree.push(TreeSetEvictor::plan_avoiding(mem, node, &guard)?);
                covered_sets.push(set);
            }
            counters.push(CounterEvictor::plan(mem, cb, &guard)?);
        }
        Ok(MetaEvictor { tree, counters })
    }

    /// Runs one full mEvict round. After this, the target node, the
    /// below-target path nodes and the watched counter blocks are
    /// (with high probability) absent from the metadata caches.
    ///
    /// # Errors
    /// Propagates transient drive-access failures of the component
    /// evictors; see [`MetaEvictor::evict_with_retry`].
    pub fn evict<Tr: Tracer>(
        &self,
        mem: &mut SecureMemory<Tr>,
        core: CoreId,
    ) -> Result<Cycles, AttackError> {
        let mut spent = Cycles::ZERO;
        for c in &self.counters {
            spent += c.evict(mem, core)?;
        }
        for t in &self.tree {
            spent += t.evict(mem, core)?;
        }
        Ok(spent)
    }

    /// [`MetaEvictor::evict`] wrapped in a bounded retry loop: if a
    /// round is disturbed mid-way it is re-driven from the top (a
    /// partial round leaves a strictly more-evicted cache, so repeats
    /// are safe).
    ///
    /// # Errors
    /// [`AttackError::RetriesExhausted`] when every attempt failed.
    pub fn evict_with_retry<Tr: Tracer>(
        &self,
        mem: &mut SecureMemory<Tr>,
        core: CoreId,
        policy: &crate::resilience::RetryPolicy,
    ) -> Result<Cycles, AttackError> {
        policy.run(mem, |m| self.evict(m, core))
    }
}

/// Volume-based eviction: instead of a set-conflict eviction set
/// (which randomized caches like MIRAGE deny), the attacker simply
/// drives *many* spread-out verification walks; with `k` random
/// metadata fills, the target is displaced with probability
/// `~1 - (1 - 1/N)^k` even under fully randomized placement (§IX-B,
/// Figure 18). Slower than [`TreeSetEvictor`] but
/// randomization-resistant.
#[derive(Debug, Clone)]
pub struct VolumeEvictor {
    /// Attacker data blocks whose walks flood the metadata caches.
    pub blocks: Vec<u64>,
}

impl VolumeEvictor {
    /// Plans a flood of `volume` blocks spread over distinct leaves,
    /// avoiding the subtrees of every node in `avoid`.
    ///
    /// # Errors
    /// Fails when the region cannot supply `volume` suitable leaves.
    pub fn plan<Tr: Tracer>(
        mem: &SecureMemory<Tr>,
        volume: usize,
        avoid: &[NodeId],
    ) -> Result<Self, AttackError> {
        let geometry = mem.tree().geometry();
        let forbidden: Vec<core::ops::Range<u64>> =
            avoid.iter().map(|&n| geometry.attached_under(n)).collect();
        let per_cb = crate::sharing::blocks_per_counter_block(mem);
        let leaves = geometry.nodes_at(0);
        let arity = geometry.arity(0) as u64;
        let mut blocks = Vec::with_capacity(volume);
        // Stride through leaves and slots so counter blocks spread over
        // both metadata caches' sets (the slot varies with the leaf so
        // the flood's counter blocks are NOT congruent).
        let mut i = 0u64;
        while blocks.len() < volume && i < leaves * arity {
            let leaf = i % leaves;
            let slot = (leaf + i / leaves) % arity;
            let cb = leaf * arity + slot;
            i += 1;
            if cb >= geometry.covered() || forbidden.iter().any(|r| r.contains(&cb)) {
                continue;
            }
            blocks.push(cb * per_cb);
        }
        if blocks.len() < volume {
            return Err(AttackError::InsufficientEvictionCandidates {
                needed: volume,
                found: blocks.len(),
            });
        }
        Ok(VolumeEvictor { blocks })
    }

    /// Runs the flood. Returns the cycles spent.
    ///
    /// # Errors
    /// [`AttackError::MeasurementInvalidated`] when the engine rejects
    /// a flood access (interference disturbed the walk); transient.
    pub fn evict<Tr: Tracer>(
        &self,
        mem: &mut SecureMemory<Tr>,
        core: CoreId,
    ) -> Result<Cycles, AttackError> {
        let mut spent = Cycles::ZERO;
        for &b in &self.blocks {
            spent += mem.flush_block(b);
            spent += mem.read(core, b)?.latency;
        }
        Ok(spent)
    }
}

/// Number of counter-cache sets (derived; the cache does not expose it
/// directly for counters).
fn mem_counter_sets<Tr: Tracer>(mem: &SecureMemory<Tr>) -> u64 {
    // Probe set indices of consecutive counter blocks until they wrap.
    let caches = mem.mcaches();
    let s0 = caches.counter_set_index(0);
    let mut n = 1u64;
    while caches.counter_set_index(n) != s0 {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaleak_engine::config::SecureConfigBuilder;

    /// A mid-sized SCT memory: 64 MiB protected (16384 pages), enough
    /// leaves (512) relative to a shrunken tree cache for eviction sets.
    fn mem() -> SecureMemory {
        let mut cfg = SecureConfigBuilder::sct(16384).build();
        cfg.sim.noise_sd = 0.0;
        cfg.mcache = metaleak_meta::mcache::MetaCacheConfig {
            counter: metaleak_sim::config::CacheConfig::new(8 * 1024, 4, 2),
            tree: metaleak_sim::config::CacheConfig::new(8 * 1024, 4, 2),
        };
        SecureMemory::new(cfg)
    }

    #[test]
    fn tree_set_evictor_actually_evicts() {
        let mut m = mem();
        let core = CoreId(0);
        let victim_block = 100 * 64;
        let cb = m.counter_block_of(victim_block);
        let target = m.tree().geometry().leaf_of(cb);
        // Load the target node by reading the victim block cold.
        m.read(core, victim_block).unwrap();
        assert!(m.tree_node_cached(target), "victim access caches its leaf");
        let ev = TreeSetEvictor::plan(&m, target).unwrap();
        ev.evict(&mut m, core).unwrap();
        assert!(!m.tree_node_cached(target), "mEvict must displace the leaf");
    }

    #[test]
    fn drivers_avoid_the_target_subtree() {
        let m = mem();
        let cb = m.counter_block_of(0);
        let target = m.tree().geometry().ancestor_at(cb, 1);
        let ev = TreeSetEvictor::plan(&m, target).unwrap();
        let forbidden = m.tree().geometry().attached_under(target);
        for &b in &ev.driver_blocks {
            let dcb = m.counter_block_of(b);
            assert!(!forbidden.contains(&dcb), "driver {b} is under the target");
        }
    }

    #[test]
    fn driver_counters_share_a_counter_set() {
        let m = mem();
        let cb = m.counter_block_of(0);
        let target = m.tree().geometry().leaf_of(cb);
        let ev = TreeSetEvictor::plan(&m, target).unwrap();
        let caches = m.mcaches();
        let sets: std::collections::HashSet<usize> = ev
            .driver_blocks
            .iter()
            .map(|&b| caches.counter_set_index(m.counter_block_of(b)))
            .collect();
        assert_eq!(sets.len(), 1, "drivers must self-thrash their counters");
    }

    #[test]
    fn counter_evictor_displaces_target_cb() {
        let mut m = mem();
        let core = CoreId(0);
        let victim_block = 200 * 64;
        let cb = m.counter_block_of(victim_block);
        m.read(core, victim_block).unwrap();
        assert!(m.counter_cached(victim_block));
        let ev = CounterEvictor::plan(&m, cb, &[]).unwrap();
        ev.evict(&mut m, core).unwrap();
        assert!(!m.counter_cached(victim_block), "counter must be evicted");
    }

    #[test]
    fn eviction_is_self_sustaining_over_rounds() {
        let mut m = mem();
        let core = CoreId(0);
        let victim_block = 100 * 64;
        let cb = m.counter_block_of(victim_block);
        let target = m.tree().geometry().leaf_of(cb);
        let ev = MetaEvictor::plan(&m, target, &[cb + 1, cb], &[]).unwrap();
        for round in 0..5 {
            // Victim touches its block, caching the leaf...
            m.flush_block(victim_block);
            m.read(core, victim_block).unwrap();
            assert!(m.tree_node_cached(target), "round {round}: victim loads leaf");
            // ...and every round the evictor displaces it again.
            ev.evict(&mut m, core).unwrap();
            assert!(!m.tree_node_cached(target), "round {round}: eviction failed");
            assert!(!m.counter_cached(victim_block), "round {round}: victim cb cached");
        }
    }

    #[test]
    fn volume_evictor_displaces_without_set_knowledge() {
        let mut m = mem();
        let core = CoreId(0);
        let victim_block = 100 * 64;
        let cb = m.counter_block_of(victim_block);
        let target = m.tree().geometry().leaf_of(cb);
        // Load the target, then flood with spread-out walks; the 8 KiB
        // 4-way tree cache holds 128 nodes, so ~400 distinct fills
        // displace it with near-certainty even without set math.
        m.read(core, victim_block).unwrap();
        assert!(m.tree_node_cached(target));
        let ev = VolumeEvictor::plan(&m, 400, &[target]).unwrap();
        ev.evict(&mut m, core).unwrap();
        assert!(!m.tree_node_cached(target), "volume eviction failed");
        // And the victim's counter went with it.
        assert!(!m.counter_cached(victim_block));
    }

    #[test]
    fn volume_evictor_respects_avoid_list() {
        let m = mem();
        let cb = m.counter_block_of(0);
        let target = m.tree().geometry().ancestor_at(cb, 1);
        let ev = VolumeEvictor::plan(&m, 200, &[target]).unwrap();
        let forbidden = m.tree().geometry().attached_under(target);
        for &b in &ev.blocks {
            assert!(!forbidden.contains(&m.counter_block_of(b)));
        }
    }

    #[test]
    fn planning_fails_on_tiny_regions() {
        let m = SecureMemory::new(SecureConfigBuilder::sct(64).build());
        let target = m.tree().geometry().leaf_of(0);
        assert!(matches!(
            TreeSetEvictor::plan(&m, target),
            Err(AttackError::InsufficientEvictionCandidates { .. })
        ));
    }
}
