//! Self-healing attack runtime: bounded retry with backoff, drift-aware
//! threshold recalibration, and ECC framing (majority vote over
//! (7,4)-Hamming codewords) for the covert channels.
//!
//! Under the adversarial interference of
//! [`metaleak_sim::interference`], individual measurements get
//! invalidated (preemption), lost (sample drops) or pushed across the
//! decision threshold (jitter, co-runner bursts, DVFS drift). The
//! pieces here let the attacks degrade gracefully instead of failing:
//! transient errors are retried with backoff, classifier drift is
//! detected and cured by re-splitting recent samples, and covert
//! payloads ride inside redundant frames whose bit-error rate shrinks
//! combinatorially with the repeat count.

use crate::error::AttackError;
use crate::timing::{split_two_clusters, ThresholdClassifier};
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::clock::Cycles;
use metaleak_sim::trace::Tracer;

// ---------------------------------------------------------------------
// Bounded retry with backoff.
// ---------------------------------------------------------------------

/// A unit-agnostic doubling backoff sequence: `initial`, `2*initial`,
/// `4*initial`, ... with saturating arithmetic.
///
/// [`RetryPolicy`] interprets the steps as simulated [`Cycles`] spent
/// via [`SecureMemory::advance_time`]; the bench supervisor reuses the
/// same schedule with the steps interpreted as wall-clock milliseconds
/// between trial re-runs. A zero `initial` yields an all-zero schedule
/// (retry immediately).
///
/// ```
/// use metaleak_attacks::resilience::BackoffSchedule;
/// let mut waits = BackoffSchedule::new(100);
/// assert_eq!(waits.next_wait(), 100);
/// assert_eq!(waits.next_wait(), 200);
/// assert_eq!(waits.next_wait(), 400);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackoffSchedule {
    next: u64,
}

impl BackoffSchedule {
    /// A schedule starting at `initial` units.
    pub fn new(initial: u64) -> Self {
        BackoffSchedule { next: initial }
    }

    /// Returns the next wait and doubles the following one
    /// (saturating).
    pub fn next_wait(&mut self) -> u64 {
        let wait = self.next;
        self.next = self.next.saturating_mul(2);
        wait
    }
}

/// A bounded retry loop with exponential backoff in simulated time.
/// Only transient errors ([`AttackError::is_transient`]) are retried;
/// permanent errors propagate immediately.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum attempts (>= 1) before giving up.
    pub max_attempts: u32,
    /// Backoff after the first failed attempt; doubles per retry. The
    /// wait is spent via [`SecureMemory::advance_time`], modelling the
    /// attacker yielding until the disturbance passes.
    pub backoff: Cycles,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_attempts: 4, backoff: Cycles::new(256) }
    }
}

impl RetryPolicy {
    /// A policy with explicit bounds. `max_attempts` is clamped to at
    /// least 1.
    pub fn new(max_attempts: u32, backoff: Cycles) -> Self {
        RetryPolicy { max_attempts: max_attempts.max(1), backoff }
    }

    /// Runs `op` until it succeeds, a permanent error occurs, or the
    /// attempt budget is spent.
    ///
    /// # Errors
    /// The first permanent error, or
    /// [`AttackError::RetriesExhausted`] after `max_attempts` transient
    /// failures.
    pub fn run<Tr: Tracer, T>(
        &self,
        mem: &mut SecureMemory<Tr>,
        mut op: impl FnMut(&mut SecureMemory<Tr>) -> Result<T, AttackError>,
    ) -> Result<T, AttackError> {
        let attempts = self.max_attempts.max(1);
        let mut waits = BackoffSchedule::new(self.backoff.as_u64());
        for attempt in 1..=attempts {
            match op(mem) {
                Ok(v) => return Ok(v),
                Err(e) if !e.is_transient() => return Err(e),
                Err(_) if attempt < attempts => {
                    mem.advance_time(Cycles::new(waits.next_wait()));
                }
                Err(_) => {}
            }
        }
        Err(AttackError::RetriesExhausted { attempts })
    }
}

// ---------------------------------------------------------------------
// Classifier drift detection and recalibration.
// ---------------------------------------------------------------------

/// Tracks running classification confidence and detects threshold
/// drift. Each observed probe latency contributes a confidence score —
/// its distance from the threshold relative to the spread of recent
/// samples. When the exponentially-weighted confidence decays below the
/// floor (latencies crowding the threshold: the calibrated gap has
/// drifted shut), the tracker re-splits its sample window into two
/// clusters and yields a fresh threshold.
#[derive(Debug, Clone)]
pub struct DriftGuard {
    window: Vec<Cycles>,
    capacity: usize,
    next: usize,
    confidence: f64,
    alpha: f64,
    floor: f64,
}

impl DriftGuard {
    /// A guard remembering the last `capacity` samples (clamped to at
    /// least 8). The confidence EWMA starts at 1.0 (fully trusted
    /// post-calibration) with smoothing 0.1 and recalibration floor 0.4.
    pub fn new(capacity: usize) -> Self {
        DriftGuard {
            window: Vec::new(),
            capacity: capacity.max(8),
            next: 0,
            confidence: 1.0,
            alpha: 0.1,
            floor: 0.4,
        }
    }

    /// Current confidence in `[0, 1]`.
    pub fn confidence(&self) -> f64 {
        self.confidence
    }

    /// The retained sample window (insertion order not preserved).
    pub fn samples(&self) -> &[Cycles] {
        &self.window
    }

    /// Records one probe latency classified by `classifier`. Returns
    /// true when confidence has decayed enough that the caller should
    /// [`DriftGuard::recalibrate`].
    pub fn observe(&mut self, latency: Cycles, classifier: &ThresholdClassifier) -> bool {
        if self.window.len() < self.capacity {
            self.window.push(latency);
        } else {
            self.window[self.next] = latency;
            self.next = (self.next + 1) % self.capacity;
        }
        let spread = {
            let min = self.window.iter().min().copied().unwrap_or(Cycles::ZERO);
            let max = self.window.iter().max().copied().unwrap_or(Cycles::ZERO);
            (max.as_u64() - min.as_u64()).max(1)
        };
        let margin = latency.as_u64().abs_diff(classifier.threshold().as_u64());
        let score = ((2.0 * margin as f64) / spread as f64).clamp(0.0, 1.0);
        self.confidence = (1.0 - self.alpha) * self.confidence + self.alpha * score;
        self.window.len() >= self.capacity.min(16) && self.confidence < self.floor
    }

    /// Re-splits the sample window into two clusters and returns the
    /// fresh classifier, restoring full confidence.
    ///
    /// # Errors
    /// [`AttackError::CalibrationFailed`] when the window holds fewer
    /// than two samples (nothing to split).
    pub fn recalibrate(&mut self) -> Result<ThresholdClassifier, AttackError> {
        let classifier = split_two_clusters(&self.window).ok_or(AttackError::CalibrationFailed)?;
        self.confidence = 1.0;
        Ok(classifier)
    }
}

// ---------------------------------------------------------------------
// (7,4)-Hamming ECC + majority-vote framing.
// ---------------------------------------------------------------------

/// Encodes a 4-bit nibble into a 7-bit Hamming codeword
/// `[p1 p2 d1 p3 d2 d3 d4]` (parity positions 1, 2, 4).
pub fn hamming_encode_nibble(nibble: u8) -> u8 {
    let d = [nibble >> 3 & 1, nibble >> 2 & 1, nibble >> 1 & 1, nibble & 1];
    let p1 = d[0] ^ d[1] ^ d[3];
    let p2 = d[0] ^ d[2] ^ d[3];
    let p3 = d[1] ^ d[2] ^ d[3];
    p1 << 6 | p2 << 5 | d[0] << 4 | p3 << 3 | d[1] << 2 | d[2] << 1 | d[3]
}

/// Decodes a 7-bit Hamming codeword, correcting up to one flipped bit.
/// Returns `(nibble, corrected)`.
pub fn hamming_decode_nibble(codeword: u8) -> (u8, bool) {
    let bit = |pos: u32| codeword >> (7 - pos) & 1; // 1-indexed positions
    let s1 = bit(1) ^ bit(3) ^ bit(5) ^ bit(7);
    let s2 = bit(2) ^ bit(3) ^ bit(6) ^ bit(7);
    let s3 = bit(4) ^ bit(5) ^ bit(6) ^ bit(7);
    let syndrome = (s3 << 2 | s2 << 1 | s1) as u32;
    let fixed = if syndrome == 0 { codeword } else { codeword ^ (1 << (7 - syndrome)) };
    let b = |pos: u32| fixed >> (7 - pos) & 1;
    (b(3) << 3 | b(5) << 2 | b(6) << 1 | b(7), syndrome != 0)
}

/// What the receiver recovered from one framed transmission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeReport {
    /// Recovered payload bits (exactly the requested length; lost
    /// positions decode as `false`).
    pub payload: Vec<bool>,
    /// Codewords where the Hamming stage corrected a bit flip.
    pub corrected_codewords: usize,
    /// Codewords containing at least one erased slot (every repeat of
    /// that wire bit was dropped) — their nibbles are best-effort.
    pub lost_codewords: usize,
    /// Total codewords in the frame.
    pub total_codewords: usize,
}

impl DecodeReport {
    /// True when nothing was erased (all losses were recoverable).
    pub fn complete(&self) -> bool {
        self.lost_codewords == 0
    }
}

/// Majority-vote + (7,4)-Hamming framing for covert payloads.
///
/// Encoding: the payload is chunked into nibbles, each Hamming-encoded
/// to 7 wire bits, and every wire bit is repeated `repeats` times
/// back-to-back. Decoding majority-votes each group of repeats (erased
/// slots abstain), then Hamming-corrects each codeword. A single
/// surviving repeat still yields the bit; a single flipped codeword bit
/// is corrected — so the framed bit-error rate falls combinatorially
/// while the raw channel's stays linear in the fault intensity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FrameCodec {
    repeats: usize,
}

impl FrameCodec {
    /// A codec repeating each wire bit `repeats` times (forced odd and
    /// at least 1 so votes cannot tie).
    pub fn new(repeats: usize) -> Self {
        FrameCodec { repeats: repeats.max(1) | 1 }
    }

    /// The per-bit repeat count.
    pub fn repeats(&self) -> usize {
        self.repeats
    }

    /// Wire bits needed for a `payload_len`-bit payload.
    pub fn wire_len(&self, payload_len: usize) -> usize {
        payload_len.div_ceil(4) * 7 * self.repeats
    }

    /// Encodes payload bits into wire bits.
    pub fn encode(&self, payload: &[bool]) -> Vec<bool> {
        let mut wire = Vec::with_capacity(self.wire_len(payload.len()));
        for chunk in payload.chunks(4) {
            let mut nibble = 0u8;
            for (i, &b) in chunk.iter().enumerate() {
                nibble |= (b as u8) << (3 - i);
            }
            let cw = hamming_encode_nibble(nibble);
            for pos in (0..7).rev() {
                let bit = cw >> pos & 1 == 1;
                for _ in 0..self.repeats {
                    wire.push(bit);
                }
            }
        }
        wire
    }

    /// Decodes received wire slots back into `payload_len` bits.
    /// `None` slots are erasures (dropped samples that retries could
    /// not recover); they abstain from the vote and are reported — not
    /// panicked on — when a whole vote group is erased.
    ///
    /// # Errors
    /// [`AttackError::InvalidParameter`] when `received` is shorter
    /// than the frame needs (the transmission was truncated).
    pub fn decode(
        &self,
        received: &[Option<bool>],
        payload_len: usize,
    ) -> Result<DecodeReport, AttackError> {
        let need = self.wire_len(payload_len);
        if received.len() < need {
            return Err(AttackError::InvalidParameter {
                what: "received frame shorter than the encoded payload",
            });
        }
        let total_codewords = payload_len.div_ceil(4);
        let mut payload = Vec::with_capacity(payload_len);
        let mut corrected_codewords = 0;
        let mut lost_codewords = 0;
        for cw_idx in 0..total_codewords {
            let mut codeword = 0u8;
            let mut erased = false;
            for bit_idx in 0..7 {
                let base = (cw_idx * 7 + bit_idx) * self.repeats;
                let group = &received[base..base + self.repeats];
                let ones = group.iter().flatten().filter(|&&b| b).count();
                let valid = group.iter().flatten().count();
                if valid == 0 {
                    erased = true; // abstention everywhere: bit unknown
                }
                let bit = valid > 0 && ones * 2 > valid;
                codeword = codeword << 1 | bit as u8;
            }
            let (nibble, corrected) = hamming_decode_nibble(codeword);
            if corrected {
                corrected_codewords += 1;
            }
            if erased {
                lost_codewords += 1;
            }
            for i in 0..4 {
                if payload.len() < payload_len {
                    payload.push(nibble >> (3 - i) & 1 == 1);
                }
            }
        }
        Ok(DecodeReport { payload, corrected_codewords, lost_codewords, total_codewords })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaleak_engine::config::SecureConfig;
    use metaleak_sim::rng::SimRng;

    #[test]
    fn hamming_round_trips_all_nibbles() {
        for n in 0..16u8 {
            let cw = hamming_encode_nibble(n);
            assert_eq!(hamming_decode_nibble(cw), (n, false), "nibble {n}");
        }
    }

    #[test]
    fn hamming_corrects_every_single_bit_flip() {
        for n in 0..16u8 {
            let cw = hamming_encode_nibble(n);
            for flip in 0..7 {
                let (decoded, corrected) = hamming_decode_nibble(cw ^ (1 << flip));
                assert_eq!(decoded, n, "nibble {n} flip {flip}");
                assert!(corrected);
            }
        }
    }

    #[test]
    fn frame_round_trips_arbitrary_payloads() {
        let mut rng = SimRng::seed_from(0xECC_0001);
        for repeats in [1, 3, 5] {
            let codec = FrameCodec::new(repeats);
            for len in [1usize, 4, 7, 32, 61] {
                let payload: Vec<bool> = (0..len).map(|_| rng.chance(0.5)).collect();
                let wire = codec.encode(&payload);
                assert_eq!(wire.len(), codec.wire_len(len));
                let received: Vec<Option<bool>> = wire.iter().map(|&b| Some(b)).collect();
                let report = codec.decode(&received, len).unwrap();
                assert_eq!(report.payload, payload, "repeats {repeats} len {len}");
                assert!(report.complete());
                assert_eq!(report.corrected_codewords, 0);
            }
        }
    }

    #[test]
    fn majority_vote_outlasts_minority_flips_and_drops() {
        let codec = FrameCodec::new(3);
        let payload = vec![true, false, true, true, false, true, false, false];
        let wire = codec.encode(&payload);
        let mut received: Vec<Option<bool>> = wire.iter().map(|&b| Some(b)).collect();
        // Flip one repeat of every third wire bit and drop another.
        for (i, slot) in received.iter_mut().enumerate() {
            match i % 9 {
                0 => *slot = slot.map(|b| !b),
                4 => *slot = None,
                _ => {}
            }
        }
        let report = codec.decode(&received, payload.len()).unwrap();
        assert_eq!(report.payload, payload);
        assert!(report.complete());
    }

    #[test]
    fn total_erasure_reports_losses_without_panicking() {
        let codec = FrameCodec::new(3);
        let payload = vec![true; 8];
        let wire = codec.encode(&payload);
        // Erase every slot of the first codeword.
        let received: Vec<Option<bool>> =
            wire.iter().enumerate().map(|(i, &b)| if i < 21 { None } else { Some(b) }).collect();
        let report = codec.decode(&received, payload.len()).unwrap();
        assert!(!report.complete());
        assert_eq!(report.lost_codewords, 1);
        assert_eq!(report.total_codewords, 2);
        // The second codeword still decodes.
        assert_eq!(&report.payload[4..], &payload[4..]);
    }

    #[test]
    fn truncated_frames_are_an_error() {
        let codec = FrameCodec::new(1);
        assert_eq!(
            codec.decode(&[Some(true); 6], 4),
            Err(AttackError::InvalidParameter {
                what: "received frame shorter than the encoded payload"
            })
        );
    }

    #[test]
    fn backoff_schedule_doubles_and_saturates() {
        let mut s = BackoffSchedule::new(3);
        assert_eq!([s.next_wait(), s.next_wait(), s.next_wait()], [3, 6, 12]);
        let mut near_max = BackoffSchedule::new(u64::MAX / 2 + 1);
        assert_eq!(near_max.next_wait(), u64::MAX / 2 + 1);
        assert_eq!(near_max.next_wait(), u64::MAX, "doubling saturates");
        assert_eq!(near_max.next_wait(), u64::MAX);
        let mut zero = BackoffSchedule::new(0);
        assert_eq!([zero.next_wait(), zero.next_wait()], [0, 0], "zero schedule never waits");
    }

    #[test]
    fn retry_policy_retries_transient_and_stops_on_permanent() {
        let mut mem = SecureMemory::new(SecureConfig::test_tiny());
        let policy = RetryPolicy::new(3, Cycles::new(100));
        // Succeeds on the third attempt; time must have passed waiting.
        let mut calls = 0;
        let t0 = mem.now();
        let out = policy.run(&mut mem, |_| {
            calls += 1;
            if calls < 3 {
                Err(AttackError::MeasurementInvalidated)
            } else {
                Ok(calls)
            }
        });
        assert_eq!(out, Ok(3));
        assert!(mem.now() - t0 >= Cycles::new(300), "backoff 100 + 200");
        // Permanent errors abort immediately.
        let mut calls = 0;
        let out: Result<(), _> = policy.run(&mut mem, |_| {
            calls += 1;
            Err(AttackError::NoProbeBlock)
        });
        assert_eq!(out, Err(AttackError::NoProbeBlock));
        assert_eq!(calls, 1);
        // Exhaustion is reported with the attempt count.
        let out: Result<(), _> = policy.run(&mut mem, |_| Err(AttackError::MeasurementInvalidated));
        assert_eq!(out, Err(AttackError::RetriesExhausted { attempts: 3 }));
    }

    #[test]
    fn drift_guard_detects_a_collapsing_gap_and_recalibrates() {
        let classifier = ThresholdClassifier::with_threshold(Cycles::new(300));
        let mut guard = DriftGuard::new(32);
        // Well-separated bands: confidence stays high.
        let mut rng = SimRng::seed_from(0xD21F7);
        for _ in 0..32 {
            let lat = if rng.chance(0.5) { 100 + rng.below(20) } else { 500 + rng.below(20) };
            assert!(!guard.observe(Cycles::new(lat), &classifier));
        }
        assert!(guard.confidence() > 0.6, "confidence {}", guard.confidence());
        // The slow band drifts down onto the stale threshold.
        let mut fired = false;
        for _ in 0..64 {
            let lat = if rng.chance(0.5) { 290 + rng.below(8) } else { 306 + rng.below(8) };
            fired |= guard.observe(Cycles::new(lat), &classifier);
        }
        assert!(fired, "crowded threshold must trigger recalibration");
        let fresh = guard.recalibrate().unwrap();
        assert!(guard.confidence() == 1.0);
        // The re-split threshold separates the *new* clusters.
        assert!(fresh.is_fast(Cycles::new(295)));
        assert!(!fresh.is_fast(Cycles::new(310)));
    }

    #[test]
    fn drift_guard_recalibration_needs_samples() {
        let mut guard = DriftGuard::new(8);
        assert_eq!(guard.recalibrate(), Err(AttackError::CalibrationFailed));
    }
}
