//! Regression harness for the deprecated constructor shims: they must
//! keep compiling (warnings only) and behave exactly like the builder
//! APIs that replaced them. This file is the single allowed call site
//! of `SecureMemory::with_tracer` and the `SecureConfig` preset
//! constructors outside the shims themselves.
#![allow(deprecated)]

use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_sim::trace::RingTracer;

#[test]
fn deprecated_config_presets_match_the_builder() {
    assert_eq!(SecureConfig::sct(512), SecureConfigBuilder::sct(512).build());
    assert_eq!(SecureConfig::ht(512), SecureConfigBuilder::ht(512).build());
    assert_eq!(SecureConfig::sgx(512), SecureConfigBuilder::sit(512).build());
}

#[test]
fn deprecated_with_tracer_matches_the_builder() {
    let drive = |mut mem: SecureMemory<RingTracer>| {
        let core = CoreId(0);
        mem.write(core, 2, [7u8; 64]).unwrap();
        mem.fence();
        let lat = mem.read(core, 2).unwrap().latency;
        (lat, mem.into_tracer().into_log().recorded())
    };
    let old = drive(SecureMemory::with_tracer(SecureConfig::test_tiny(), RingTracer::new(1024)));
    let new = drive(
        SecureMemory::builder(SecureConfig::test_tiny()).tracer(RingTracer::new(1024)).build(),
    );
    assert_eq!(old, new);
}
