//! End-to-end tests of the three encryption-counter schemes of
//! Figure 3 / Algorithm 1 inside the full engine, including the
//! whole-memory re-keying path of GC/MoC overflow.

use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};
use metaleak_engine::secmem::SecureMemory;
use metaleak_meta::enc_counter::{CounterScheme, CounterWidths};
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_sim::addr::CoreId;
use metaleak_sim::config::SimConfig;

fn config_with(scheme: CounterScheme, mono_bits: u8) -> SecureConfig {
    SecureConfigBuilder::sct(64)
        .sim(SimConfig::small())
        .mcache(MetaCacheConfig::small())
        .scheme(scheme)
        .enc_widths(CounterWidths { minor_bits: 3, mono_bits })
        .build()
}

#[test]
fn global_counter_overflow_rekeys_and_preserves_data() {
    let mut mem = SecureMemory::new(config_with(CounterScheme::Global, 4));
    let core = CoreId(0);
    mem.write_back(core, 1, [0x11; 64]).unwrap();
    mem.write_back(core, 2, [0x22; 64]).unwrap();
    mem.fence();
    // A 4-bit global counter overflows after 15 total writes.
    for i in 0..20u64 {
        mem.write_back(core, 3 + (i % 4), [i as u8; 64]).unwrap();
        mem.fence();
    }
    assert!(mem.stats.get("rekeys") >= 1, "global overflow must rotate the key");
    assert!(mem.stats.get("enc_overflows") >= 1);
    // Data written before the re-key must still decrypt (whole-memory
    // re-encryption under the new key).
    mem.flush_block(1);
    assert_eq!(mem.read(core, 1).unwrap().data, [0x11; 64]);
    mem.flush_block(2);
    assert_eq!(mem.read(core, 2).unwrap().data, [0x22; 64]);
}

#[test]
fn monolithic_counter_overflow_rekeys_too() {
    let mut mem = SecureMemory::new(config_with(CounterScheme::Monolithic, 4));
    let core = CoreId(0);
    mem.write_back(core, 9, [0x99; 64]).unwrap();
    mem.fence();
    // Hammer one block: its own 4-bit counter overflows after 15 writes.
    for i in 0..16u64 {
        mem.write_back(core, 5, [i as u8; 64]).unwrap();
        mem.fence();
    }
    assert_eq!(mem.stats.get("rekeys"), 1, "one mono overflow, one rekey");
    mem.flush_block(9);
    assert_eq!(mem.read(core, 9).unwrap().data, [0x99; 64]);
    mem.flush_block(5);
    assert_eq!(mem.read(core, 5).unwrap().data, [15u8; 64]);
}

#[test]
fn split_scheme_overflow_is_local_no_rekey() {
    let mut mem = SecureMemory::new(config_with(CounterScheme::Split, 16));
    let core = CoreId(0);
    for i in 0..16u64 {
        mem.write_back(core, 5, [i as u8; 64]).unwrap();
        mem.fence();
    }
    assert!(mem.stats.get("enc_overflows") >= 1, "3-bit minor overflows");
    assert_eq!(mem.stats.get("rekeys"), 0, "SC never rotates the key");
}

#[test]
fn overflow_frequency_ordering_matches_figure_3() {
    // With equal write budgets, GC overflows most (counter shared by
    // all writes), MoC only when one block is hammered, SC per page.
    let writes = 24u64;
    let mut gc = SecureMemory::new(config_with(CounterScheme::Global, 4));
    let mut moc = SecureMemory::new(config_with(CounterScheme::Monolithic, 4));
    let core = CoreId(0);
    for i in 0..writes {
        // Spread writes over 8 blocks: GC's shared counter sees all 24,
        // each MoC counter sees only 3.
        let b = i % 8;
        gc.write_back(core, b, [i as u8; 64]).unwrap();
        gc.fence();
        moc.write_back(core, b, [i as u8; 64]).unwrap();
        moc.fence();
    }
    assert!(gc.stats.get("enc_overflows") >= 1, "GC must overflow under spread writes");
    assert_eq!(moc.stats.get("enc_overflows"), 0, "MoC counters stay below 15");
}

#[test]
fn rekey_invalidates_unwritten_blocks_gracefully() {
    // Blocks never touched before a re-key must still read as zeros
    // afterwards (lazy re-derivation under the new key).
    let mut mem = SecureMemory::new(config_with(CounterScheme::Global, 4));
    let core = CoreId(0);
    for i in 0..16u64 {
        mem.write_back(core, 0, [i as u8; 64]).unwrap();
        mem.fence();
    }
    assert!(mem.stats.get("rekeys") >= 1);
    assert_eq!(mem.read(core, 60).unwrap().data, [0u8; 64]);
}

#[test]
fn rekey_reseals_cached_counter_block_macs() {
    // Regression: rotate_key() re-keys the MAC engine, so counter-block
    // MACs sealed before a whole-memory rekey are computed under the
    // old key. They must be re-sealed during overflow handling, or the
    // first post-rekey access through such a counter block falsely
    // reports TamperDetected(CounterMac). Seen with randomized
    // workloads spanning many counter blocks (the fixed-seed version of
    // this workload happened to dodge it).
    use metaleak_sim::rng::SimRng;
    let mut mem = SecureMemory::new(config_with(CounterScheme::Global, 6));
    let core = CoreId(0);
    let mut rng = SimRng::seed_from(2);
    for i in 0..400usize {
        // 80% of writes hammer a hot set (driving the global counter to
        // overflow), the rest scatter across many counter blocks so
        // plenty of counter-block MACs are cached at rekey time.
        let block = if rng.chance(0.8) { rng.below(8) } else { rng.below(64 * 64) };
        mem.write_back(core, block, [i as u8; 64]).unwrap();
        mem.fence();
    }
    assert!(mem.stats.get("rekeys") >= 1, "workload must trigger at least one rekey");
}
