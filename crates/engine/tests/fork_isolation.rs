//! Fork isolation under copy-on-write state sharing.
//!
//! `Snapshot::fork` hands out engines whose state containers are
//! structurally shared with the snapshot and with every sibling fork.
//! These properties pin down the aliasing contract: driving one fork
//! through an op soup that dirties *every* state component — data
//! blocks, encryption counters, integrity-tree nodes, metadata cache
//! lines, the LLC, DRAM row state, the write queue, the clock — must
//! leave the parent snapshot and a sibling fork bit-identical to
//! their pre-mutation selves.
//!
//! The digest is the engine's `Debug` rendering: every container in
//! simulator state iterates deterministically, so two states render
//! identically iff they are identical.

use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};
use metaleak_engine::secmem::SecureMemory;
use metaleak_meta::enc_counter::CounterWidths;
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_meta::tree::TreeKind;
use metaleak_sim::addr::CoreId;
use metaleak_sim::clock::Cycles;
use metaleak_sim::config::SimConfig;
use metaleak_sim::rng::SimRng;

fn tiny(kind: TreeKind) -> SecureConfig {
    let base = match kind {
        TreeKind::SplitCounter => SecureConfigBuilder::sct(64),
        TreeKind::Hash => SecureConfigBuilder::ht(64),
        TreeKind::Sgx => SecureConfigBuilder::sit(64),
    };
    base.sim(SimConfig::small())
        .mcache(MetaCacheConfig::small())
        .enc_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
        .tree_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
        .build()
}

const KINDS: [TreeKind; 3] = [TreeKind::SplitCounter, TreeKind::Hash, TreeKind::Sgx];

/// One random operation on `mem`, drawn from a mix that collectively
/// dirties every copy-on-write state component. Results are ignored:
/// tamper ops may legitimately make later verifies fail, and failing
/// accesses still mutate caches, DRAM and the clock.
fn mutate(mem: &mut SecureMemory, rng: &mut SimRng) {
    let core = CoreId(rng.index(2));
    let block = rng.below(4096);
    match rng.below(12) {
        // Data blocks, encryption counters, MACs, the write queue.
        0 | 1 => {
            let _ = mem.write_back(core, block, [rng.next_u64() as u8; 64]);
        }
        // The synchronous write path (tree update included).
        2 => {
            let _ = mem.write(core, block, [rng.next_u64() as u8; 64]);
        }
        // LLC, metadata caches, DRAM row-buffer state.
        3 | 4 => {
            let _ = mem.read(core, block);
        }
        5 => {
            mem.flush_block(block);
        }
        // Drains the write queue.
        6 => {
            mem.fence();
        }
        // Lazy tree updates for every dirty metadata line.
        7 => {
            mem.drain_metadata();
        }
        8 => {
            mem.advance_time(Cycles::new(1 + rng.below(1000)));
        }
        // Forced metadata writebacks (tree-node dirtying).
        9 => {
            let cb = mem.counter_block_of(block);
            mem.force_counter_writeback(cb);
        }
        // Ciphertext-store mutation outside the normal write path.
        10 => {
            mem.tamper_data(block);
        }
        _ => {
            mem.reseed_interference(rng.next_u64());
        }
    }
}

/// Warms an engine with a short random workload so the snapshot holds
/// non-trivial state in every component, then freezes it.
fn warm_snapshot(rng: &mut SimRng, kind: TreeKind) -> metaleak_engine::Snapshot {
    let mut mem = SecureMemory::new(tiny(kind));
    let core = CoreId(0);
    for _ in 0..(8 + rng.index(40)) {
        let block = rng.below(4096);
        match rng.below(3) {
            0 => {
                mem.write_back(core, block, [rng.next_u64() as u8; 64]).unwrap();
            }
            1 => {
                let _ = mem.read(core, block).unwrap();
            }
            _ => {
                mem.fence();
            }
        }
    }
    mem.into_snapshot()
}

/// Mutating one fork through every state component leaves the parent
/// snapshot and a sibling fork bit-unchanged.
#[test]
fn mutating_one_fork_leaves_sibling_and_parent_untouched() {
    for seed in 0..12u64 {
        let mut rng = SimRng::seed_from(0xF08C_1500 + seed);
        let kind = KINDS[rng.index(3)];
        let snap = warm_snapshot(&mut rng, kind);
        let sibling = snap.fork();
        let parent_before = format!("{snap:?}");
        let sibling_before = format!("{sibling:?}");

        let mut hot = snap.fork();
        for _ in 0..(20 + rng.index(80)) {
            mutate(&mut hot, &mut rng);
        }

        assert_eq!(format!("{snap:?}"), parent_before, "seed {seed} ({kind:?}): parent mutated");
        assert_eq!(
            format!("{sibling:?}"),
            sibling_before,
            "seed {seed} ({kind:?}): sibling mutated"
        );
        // A fork taken *after* the mutations is still the same engine a
        // fork taken before them was.
        assert_eq!(
            format!("{:?}", snap.fork()),
            sibling_before,
            "seed {seed} ({kind:?}): late fork differs"
        );
    }
}

/// Isolation is symmetric: two forks mutated with independent op soups
/// never bleed into each other, and both replay deterministically —
/// the same soup on a fresh fork reproduces the same final state.
#[test]
fn sibling_forks_mutate_independently_and_deterministically() {
    for seed in 0..8u64 {
        let mut rng = SimRng::seed_from(0xF08C_2600 + seed);
        let kind = KINDS[rng.index(3)];
        let snap = warm_snapshot(&mut rng, kind);
        let soup_a = rng.next_u64();
        let soup_b = rng.next_u64();
        let run = |soup_seed: u64| {
            let mut fork = snap.fork();
            let mut soup = SimRng::seed_from(soup_seed);
            for _ in 0..40 {
                mutate(&mut fork, &mut soup);
            }
            format!("{fork:?}")
        };
        let (a1, b1) = (run(soup_a), run(soup_b));
        let (a2, b2) = (run(soup_a), run(soup_b));
        assert_eq!(a1, a2, "seed {seed} ({kind:?}): fork replay not deterministic");
        assert_eq!(b1, b2, "seed {seed} ({kind:?}): fork replay not deterministic");
        assert_ne!(a1, b1, "seed {seed} ({kind:?}): different soups converged");
    }
}
