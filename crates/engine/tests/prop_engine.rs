//! Engine-level property tests across all three tree designs: random
//! operation interleavings must preserve data and detectability.
//!
//! Randomized op soups come from seeded [`SimRng`] loops so failures
//! reproduce deterministically.

use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};
use metaleak_engine::secmem::SecureMemory;
use metaleak_meta::enc_counter::CounterWidths;
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_meta::tree::TreeKind;
use metaleak_sim::addr::CoreId;
use metaleak_sim::config::SimConfig;
use metaleak_sim::rng::SimRng;

fn tiny(kind: TreeKind) -> SecureConfig {
    let base = match kind {
        TreeKind::SplitCounter => SecureConfigBuilder::sct(64),
        TreeKind::Hash => SecureConfigBuilder::ht(64),
        TreeKind::Sgx => SecureConfigBuilder::sit(64),
    };
    base.sim(SimConfig::small())
        .mcache(MetaCacheConfig::small())
        .enc_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
        .tree_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
        .build()
}

const KINDS: [TreeKind; 3] = [TreeKind::SplitCounter, TreeKind::Hash, TreeKind::Sgx];

/// Random op soup on every tree design: last-written values always
/// read back; no spurious tamper detections ever fire.
#[test]
fn all_designs_round_trip_under_random_ops() {
    for seed in 0..18u64 {
        let mut rng = SimRng::seed_from(0xE4614E00 + seed);
        let kind = KINDS[rng.index(3)];
        let mut mem = SecureMemory::new(tiny(kind));
        let core = CoreId(0);
        let mut shadow = std::collections::HashMap::new();
        let n = 1 + rng.index(80);
        for _ in 0..n {
            let op = rng.below(5) as u8;
            let block = rng.below(4096);
            let val = rng.next_u64() as u8;
            match op {
                0 => {
                    mem.write_back(core, block, [val; 64]).unwrap();
                    shadow.insert(block, val);
                }
                1 => {
                    let expect = shadow.get(&block).copied().unwrap_or(0);
                    assert_eq!(mem.read(core, block).unwrap().data, [expect; 64]);
                }
                2 => {
                    mem.flush_block(block);
                }
                3 => {
                    mem.fence();
                }
                _ => {
                    mem.drain_metadata();
                }
            }
        }
        mem.fence();
        mem.drain_metadata();
        for (block, val) in shadow {
            mem.flush_block(block);
            assert_eq!(mem.read(core, block).unwrap().data, [val; 64], "seed {seed}");
        }
    }
}

/// After arbitrary writes, replaying any earlier (ct, mac) snapshot
/// of a block that was subsequently rewritten is detected, on every
/// design.
#[test]
fn replay_is_always_detected() {
    for seed in 0..18u64 {
        let mut rng = SimRng::seed_from(0xE4614E10 + seed);
        let kind = KINDS[rng.index(3)];
        let block = rng.below(4096);
        let writes = 1 + rng.index(5);
        let mut mem = SecureMemory::new(tiny(kind));
        let core = CoreId(0);
        mem.write_back(core, block, [1u8; 64]).unwrap();
        mem.fence();
        let snapshot = mem.snapshot_data(block);
        for i in 0..writes {
            mem.write_back(core, block, [2 + i as u8; 64]).unwrap();
            mem.fence();
        }
        mem.replay_data(block, snapshot);
        assert!(mem.read(core, block).is_err(), "{kind:?}: replay accepted");
    }
}

/// The clock is strictly monotone across any operation mix.
#[test]
fn clock_is_monotone() {
    for seed in 0..18u64 {
        let mut rng = SimRng::seed_from(0xE4614E20 + seed);
        let mut mem = SecureMemory::new(tiny(TreeKind::SplitCounter));
        let core = CoreId(0);
        let mut last = mem.now();
        let n = 1 + rng.index(60);
        for _ in 0..n {
            let op = rng.below(4) as u8;
            let block = rng.below(4096);
            match op {
                0 => {
                    mem.write_back(core, block, [1u8; 64]).unwrap();
                }
                1 => {
                    let _ = mem.read(core, block).unwrap();
                }
                2 => {
                    mem.flush_block(block);
                }
                _ => {
                    mem.fence();
                }
            }
            let now = mem.now();
            assert!(now >= last);
            last = now;
        }
    }
}

/// Access paths partition correctly: a read immediately after a
/// read of the same block is always a cache hit; after a flush it
/// never is.
#[test]
fn path_classification_is_consistent() {
    use metaleak_engine::secmem::AccessPath;
    let mut rng = SimRng::seed_from(0xE4614E30);
    for _ in 0..18 {
        let block = rng.below(4096);
        let mut mem = SecureMemory::new(tiny(TreeKind::SplitCounter));
        let core = CoreId(0);
        mem.read(core, block).unwrap();
        let warm = mem.read(core, block).unwrap();
        assert!(matches!(warm.path, AccessPath::CacheHit(_)));
        mem.flush_block(block);
        let refetch = mem.read(core, block).unwrap();
        assert!(!matches!(refetch.path, AccessPath::CacheHit(_)));
    }
}
