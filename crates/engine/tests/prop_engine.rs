//! Engine-level property tests across all three tree designs: random
//! operation interleavings must preserve data and detectability.

use metaleak_engine::config::SecureConfig;
use metaleak_engine::secmem::SecureMemory;
use metaleak_meta::enc_counter::CounterWidths;
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_meta::tree::TreeKind;
use metaleak_sim::addr::CoreId;
use metaleak_sim::config::SimConfig;
use proptest::prelude::*;

fn tiny(kind: TreeKind) -> SecureConfig {
    let mut cfg = match kind {
        TreeKind::SplitCounter => SecureConfig::sct(64),
        TreeKind::Hash => SecureConfig::ht(64),
        TreeKind::Sgx => SecureConfig::sgx(64),
    };
    cfg.sim = SimConfig::small();
    cfg.mcache = MetaCacheConfig::small();
    cfg.enc_widths = CounterWidths { minor_bits: 3, mono_bits: 16 };
    cfg.tree_widths = CounterWidths { minor_bits: 3, mono_bits: 16 };
    cfg
}

fn kind_strategy() -> impl Strategy<Value = TreeKind> {
    prop::sample::select(vec![TreeKind::SplitCounter, TreeKind::Hash, TreeKind::Sgx])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(18))]

    /// Random op soup on every tree design: last-written values always
    /// read back; no spurious tamper detections ever fire.
    #[test]
    fn all_designs_round_trip_under_random_ops(
        kind in kind_strategy(),
        ops in prop::collection::vec((0u8..5, 0u64..4096, any::<u8>()), 1..80),
    ) {
        let mut mem = SecureMemory::new(tiny(kind));
        let core = CoreId(0);
        let mut shadow = std::collections::HashMap::new();
        for (op, block, val) in ops {
            match op {
                0 => {
                    mem.write_back(core, block, [val; 64]).unwrap();
                    shadow.insert(block, val);
                }
                1 => {
                    let expect = shadow.get(&block).copied().unwrap_or(0);
                    prop_assert_eq!(mem.read(core, block).unwrap().data, [expect; 64]);
                }
                2 => { mem.flush_block(block); }
                3 => { mem.fence(); }
                _ => { mem.drain_metadata(); }
            }
        }
        mem.fence();
        mem.drain_metadata();
        for (block, val) in shadow {
            mem.flush_block(block);
            prop_assert_eq!(mem.read(core, block).unwrap().data, [val; 64]);
        }
    }

    /// After arbitrary writes, replaying any earlier (ct, mac) snapshot
    /// of a block that was subsequently rewritten is detected, on every
    /// design.
    #[test]
    fn replay_is_always_detected(
        kind in kind_strategy(),
        block in 0u64..4096,
        writes in 1usize..6,
    ) {
        let mut mem = SecureMemory::new(tiny(kind));
        let core = CoreId(0);
        mem.write_back(core, block, [1u8; 64]).unwrap();
        mem.fence();
        let snapshot = mem.snapshot_data(block);
        for i in 0..writes {
            mem.write_back(core, block, [2 + i as u8; 64]).unwrap();
            mem.fence();
        }
        mem.replay_data(block, snapshot);
        prop_assert!(mem.read(core, block).is_err(), "{kind:?}: replay accepted");
    }

    /// The clock is strictly monotone across any operation mix.
    #[test]
    fn clock_is_monotone(ops in prop::collection::vec((0u8..4, 0u64..4096), 1..60)) {
        let mut mem = SecureMemory::new(tiny(TreeKind::SplitCounter));
        let core = CoreId(0);
        let mut last = mem.now();
        for (op, block) in ops {
            match op {
                0 => { mem.write_back(core, block, [1u8; 64]).unwrap(); }
                1 => { let _ = mem.read(core, block).unwrap(); }
                2 => { mem.flush_block(block); }
                _ => { mem.fence(); }
            }
            let now = mem.now();
            prop_assert!(now >= last);
            last = now;
        }
    }

    /// Access paths partition correctly: a read immediately after a
    /// read of the same block is always a cache hit; after a flush it
    /// never is.
    #[test]
    fn path_classification_is_consistent(block in 0u64..4096) {
        use metaleak_engine::secmem::AccessPath;
        let mut mem = SecureMemory::new(tiny(TreeKind::SplitCounter));
        let core = CoreId(0);
        mem.read(core, block).unwrap();
        let warm = mem.read(core, block).unwrap();
        prop_assert!(matches!(warm.path, AccessPath::CacheHit(_)));
        mem.flush_block(block);
        let refetch = mem.read(core, block).unwrap();
        prop_assert!(!matches!(refetch.path, AccessPath::CacheHit(_)));
    }
}
