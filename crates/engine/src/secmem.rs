//! The secure memory engine: ties the cache hierarchy, memory
//! controller, crypto engine, encryption counters, integrity tree and
//! metadata caches into the read/write paths of Figure 5, with the
//! overflow handling of Algorithm 1 and the verification walk of
//! Algorithm 2.

use crate::config::SecureConfig;
use metaleak_crypto::engine::{Block, CryptoEngine};
use metaleak_crypto::ghash::Tag;
use metaleak_meta::enc_counter::{EncCounters, OverflowEvent, ReencryptScope};
use metaleak_meta::geometry::NodeId;
use metaleak_meta::hashbuf::HashBuf;
use metaleak_meta::layout::SecureLayout;
use metaleak_meta::mcache::MetadataCaches;
use metaleak_meta::tree::{IntegrityTree, TreeKind, TreeOverflowEvent};
use metaleak_sim::addr::{BlockAddr, CoreId};
use metaleak_sim::clock::{Clock, Cycles};
use metaleak_sim::cow::CowMap;
use metaleak_sim::dram::Dram;
use metaleak_sim::hierarchy::{CacheHierarchy, HitLevel};
use metaleak_sim::interference::{FaultKind, InterferenceEngine, Perturbation};
use metaleak_sim::memctl::{DrainReport, MemoryController};
use metaleak_sim::stats::Counters;
use metaleak_sim::trace::{
    CryptoKind, MacScope, MemRegion, NullTracer, PathClass, TraceEvent, Tracer,
};

/// Which of the Figure-5 access paths a memory operation took.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessPath {
    /// Path-1: data cache hit, no security engine involvement.
    CacheHit(HitLevel),
    /// The read was satisfied by store-to-load forwarding from the
    /// memory controller's write queue (the data never re-entered the
    /// encrypted domain, so no verification is needed).
    StoreForward,
    /// Path-2: data from memory, counter cached (OTP overlapped).
    CounterHit,
    /// Path-3/4: counter missed; the tree walk loaded `loaded_levels`
    /// node blocks before reaching a cached ancestor (0 = leaf cached).
    TreeWalk {
        /// Node blocks loaded from memory during verification.
        loaded_levels: u8,
        /// True when no ancestor was cached and the walk ran to the
        /// on-chip root.
        to_root: bool,
    },
}

impl AccessPath {
    /// Convenience: true for any path that touched the integrity tree.
    pub fn walked_tree(&self) -> bool {
        matches!(self, AccessPath::TreeWalk { .. })
    }

    /// The engine-independent [`PathClass`] used in trace events.
    pub fn class(&self) -> PathClass {
        match *self {
            AccessPath::CacheHit(HitLevel::L1) => PathClass::CacheHit(1),
            AccessPath::CacheHit(HitLevel::L2) => PathClass::CacheHit(2),
            AccessPath::CacheHit(HitLevel::L3) => PathClass::CacheHit(3),
            AccessPath::StoreForward => PathClass::StoreForward,
            AccessPath::CounterHit => PathClass::CounterHit,
            AccessPath::TreeWalk { loaded_levels, to_root } => {
                PathClass::TreeWalk { loaded: loaded_levels, to_root }
            }
        }
    }
}

/// Result of a data read.
#[derive(Debug, Clone)]
pub struct ReadResult {
    /// Observed load-to-use latency.
    pub latency: Cycles,
    /// Which access path the read took.
    pub path: AccessPath,
    /// Decrypted block contents.
    pub data: Block,
    /// True when an injected preemption gap overlapped the access: the
    /// reported latency spans the deschedule and cannot be trusted as a
    /// timing measurement.
    pub invalidated: bool,
}

/// Result of a data write (cache write; memory effects happen at
/// drain/flush time).
#[derive(Debug, Clone)]
pub struct WriteResult {
    /// Observed store latency (including write-allocate fill).
    pub latency: Cycles,
    /// Access path of the write-allocate fill.
    pub path: AccessPath,
    /// True when an injected preemption gap overlapped the store (see
    /// [`ReadResult::invalidated`]).
    pub invalidated: bool,
}

/// Integrity violation detected by the engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TamperKind {
    /// Data-block MAC mismatch (spoofing/splicing).
    DataMac,
    /// Counter-block MAC mismatch (counter tamper/replay).
    CounterMac,
    /// Integrity-tree node mismatch (metadata tamper/replay).
    TreeNode,
}

/// Error type of the secure memory engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SecureMemError {
    /// Verification failed: off-chip tampering detected.
    TamperDetected(TamperKind),
}

impl core::fmt::Display for SecureMemError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SecureMemError::TamperDetected(k) => write!(f, "integrity violation detected: {k:?}"),
        }
    }
}

impl std::error::Error for SecureMemError {}

/// The secure memory engine.
///
/// Generic over a [`Tracer`]: the default [`NullTracer`] compiles every
/// instrumentation site away, while
/// [`SecureMemoryBuilder::tracer`] + `metaleak_sim::trace::RingTracer`
/// records a cycle-level event stream for `tracescan`.
///
/// Construct through [`SecureMemory::builder`] (tracer, fault plan and
/// initial contents as chained options) or the [`SecureMemory::new`]
/// shorthand; capture warm state with [`SecureMemory::snapshot`] and
/// restore it with [`crate::snapshot::Snapshot::fork`].
///
/// ```
/// use metaleak_engine::config::SecureConfig;
/// use metaleak_engine::secmem::SecureMemory;
/// use metaleak_sim::addr::CoreId;
///
/// let mut mem = SecureMemory::new(SecureConfig::test_tiny());
/// mem.write(CoreId(0), 3, [9u8; 64]).unwrap();
/// let r = mem.read(CoreId(0), 3).unwrap();
/// assert_eq!(r.data, [9u8; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct SecureMemory<T: Tracer = NullTracer> {
    tracer: T,
    config: SecureConfig,
    clock: Clock,
    hier: CacheHierarchy,
    mc: MemoryController,
    mcaches: MetadataCaches,
    crypto: CryptoEngine,
    enc: EncCounters,
    tree: IntegrityTree,
    layout: SecureLayout,
    /// Ciphertexts as stored in memory (lazy; absent = encryption of
    /// zeros under the block's current counter).
    cipher: CowMap<Block>,
    /// Ground-truth plaintext (what on-chip caches hold).
    plain: CowMap<Block>,
    /// Per-data-block MACs.
    macs: CowMap<Tag>,
    /// Per-counter-block MACs (bound to the tree leaf version).
    cb_macs: CowMap<Tag>,
    interference: InterferenceEngine,
    /// Engine event counters.
    pub stats: Counters,
}

/// Chainable constructor for [`SecureMemory`], the single entry point
/// behind which the historical per-attack setup variants collapse: an
/// optional [`Tracer`], an optional fault-plan override, and optional
/// initial memory contents, all as chained options.
///
/// ```
/// use metaleak_engine::config::SecureConfig;
/// use metaleak_engine::secmem::SecureMemory;
/// use metaleak_sim::addr::CoreId;
///
/// let mut mem = SecureMemory::builder(SecureConfig::test_tiny())
///     .contents(7, [0xAB; 64])
///     .build();
/// assert_eq!(mem.read(CoreId(0), 7).unwrap().data, [0xAB; 64]);
/// ```
#[derive(Debug, Clone)]
pub struct SecureMemoryBuilder<T: Tracer = NullTracer> {
    config: SecureConfig,
    tracer: T,
    contents: Vec<(u64, Block)>,
}

impl SecureMemoryBuilder<NullTracer> {
    fn new(config: SecureConfig) -> Self {
        SecureMemoryBuilder { config, tracer: NullTracer, contents: Vec::new() }
    }
}

impl<T: Tracer> SecureMemoryBuilder<T> {
    /// Attaches a tracer (e.g. `metaleak_sim::trace::RingTracer`); the
    /// engine records its cycle-level event stream into it. Replaces
    /// any previously attached tracer.
    pub fn tracer<U: Tracer>(self, tracer: U) -> SecureMemoryBuilder<U> {
        SecureMemoryBuilder { config: self.config, tracer, contents: self.contents }
    }

    /// Overrides the configuration's adversarial-interference fault
    /// plan.
    pub fn faults(mut self, plan: metaleak_sim::interference::FaultPlan) -> Self {
        self.config.faults = plan;
        self
    }

    /// Preloads data block `index` with `data` before the clock starts:
    /// the block is encrypted and MACed under its current (initial)
    /// counter, exactly as if it had been written and drained before
    /// the measurement window — with no timing side effects.
    pub fn contents(mut self, index: u64, data: Block) -> Self {
        self.contents.push((index, data));
        self
    }

    /// Builds the engine.
    pub fn build(self) -> SecureMemory<T> {
        let mut mem = SecureMemory::construct(self.config, self.tracer);
        for (index, data) in self.contents {
            mem.preload_block(index, data);
        }
        mem
    }
}

impl SecureMemory<NullTracer> {
    /// Starts a [`SecureMemoryBuilder`] for `config`.
    pub fn builder(config: SecureConfig) -> SecureMemoryBuilder<NullTracer> {
        SecureMemoryBuilder::new(config)
    }

    /// Builds a secure memory from `config` with tracing compiled out
    /// (shorthand for `SecureMemory::builder(config).build()`).
    pub fn new(config: SecureConfig) -> Self {
        Self::builder(config).build()
    }
}

impl<T: Tracer> SecureMemory<T> {
    fn construct(config: SecureConfig, tracer: T) -> Self {
        let data_blocks = config.data_blocks();
        let enc = EncCounters::new(config.scheme, config.enc_widths, data_blocks);
        let counter_blocks = enc.counter_blocks();
        let geometry = match config.tree_kind {
            TreeKind::SplitCounter => metaleak_meta::geometry::TreeGeometry::sct(counter_blocks),
            TreeKind::Hash => metaleak_meta::geometry::TreeGeometry::ht(counter_blocks),
            TreeKind::Sgx => metaleak_meta::geometry::TreeGeometry::sit(counter_blocks),
        };
        let mut tree = IntegrityTree::new(config.tree_kind, geometry.clone(), config.tree_widths);
        // HT leaves must hash the genuine initial counter-block bytes.
        {
            let enc_ref = &enc;
            tree.init_leaf_hashes(|cb| enc_ref.counter_block_bytes(cb));
        }
        let layout = SecureLayout::new(config.data_base, data_blocks, counter_blocks, &geometry);
        // The legacy `noise_sd` knob folds into the fault plan as one
        // more Gaussian process, making it a special case of the
        // general interference model.
        let mut plan = config.faults.clone();
        if config.sim.noise_sd > 0.0 {
            plan = plan.with(FaultKind::GaussianNoise { sd: config.sim.noise_sd });
        }
        SecureMemory {
            tracer,
            interference: InterferenceEngine::new(plan),
            hier: CacheHierarchy::new(&config.sim),
            mc: MemoryController::new(config.sim.memctl, Dram::new(config.sim.dram)),
            mcaches: MetadataCaches::new(config.mcache),
            crypto: CryptoEngine::new(config.key),
            enc,
            tree,
            layout,
            cipher: CowMap::new(data_blocks.max(1)),
            plain: CowMap::new(data_blocks.max(1)),
            macs: CowMap::new(data_blocks.max(1)),
            cb_macs: CowMap::new(counter_blocks.max(1)),
            stats: Counters::new(),
            clock: Clock::new(),
            config,
        }
    }

    // ------------------------------------------------------------------
    // Accessors used by attacks and experiments.
    // ------------------------------------------------------------------

    /// The attached tracer.
    pub fn tracer(&self) -> &T {
        &self.tracer
    }

    /// Consumes the engine, returning the tracer (to snapshot a
    /// `RingTracer` into a `TraceLog` after a run).
    pub fn into_tracer(self) -> T {
        self.tracer
    }

    /// Records `event` at the current simulated time. No-op (and fully
    /// compiled out) under [`NullTracer`]; used by the attack layer to
    /// mark probe issues and sample classifications.
    #[inline]
    pub fn trace(&mut self, event: TraceEvent) {
        if T::ENABLED {
            self.tracer.record(self.clock.now(), event);
        }
    }

    /// The configuration.
    pub fn config(&self) -> &SecureConfig {
        &self.config
    }

    /// Current simulated time.
    pub fn now(&self) -> Cycles {
        self.clock.now()
    }

    /// The physical memory map.
    pub fn layout(&self) -> &SecureLayout {
        &self.layout
    }

    /// The integrity tree (read-only; for attack planning and tests).
    pub fn tree(&self) -> &IntegrityTree {
        &self.tree
    }

    /// The encryption counters (read-only).
    pub fn counters(&self) -> &EncCounters {
        &self.enc
    }

    /// Metadata caches (read-only; for set-index math in mEvict).
    pub fn mcaches(&self) -> &MetadataCaches {
        &self.mcaches
    }

    /// The interference engine (fault-injection state and counters).
    pub fn interference(&self) -> &InterferenceEngine {
        &self.interference
    }

    /// Mutable interference engine — the attack runtime draws probe
    /// sample fates from it.
    pub fn interference_mut(&mut self) -> &mut InterferenceEngine {
        &mut self.interference
    }

    /// Restarts the interference fault schedule from `seed` (see
    /// [`InterferenceEngine::reseed`]). Forked snapshots use this so
    /// each fork draws an independent fault stream instead of
    /// replaying the parent's schedule.
    pub fn reseed_interference(&mut self, seed: u64) {
        self.interference.reseed(seed);
    }

    /// Seals the attached tracer's history into an immutable shared
    /// segment (see [`Tracer::seal`]); called when a snapshot is taken
    /// so forks share the warmup event log instead of copying it.
    pub(crate) fn seal_tracer(&mut self) {
        self.tracer.seal();
    }

    /// Forces every copy-on-write state component fully private,
    /// materializing all chunks still shared with a snapshot or fork.
    /// This is exactly the work a pre-copy-on-write `fork()` deep copy
    /// performed, which makes it the honest baseline for the
    /// `fork_cost` benchmark. Never needed for correctness.
    pub fn unshare(&mut self) {
        self.hier.unshare();
        self.mcaches.unshare();
        self.enc.unshare();
        self.tree.unshare();
        self.cipher.unshare();
        self.plain.unshare();
        self.macs.unshare();
        self.cb_macs.unshare();
    }

    /// Captures the full simulator state — caches, metadata caches,
    /// integrity tree, counters, DRAM row/bank state, memory-controller
    /// queues, cycle clock and tracer ring — as an immutable
    /// [`crate::snapshot::Snapshot`]. The large components are
    /// structurally shared (copy-on-write), so the capture and every
    /// subsequent fork are O(1) in the simulated memory size. Forks of
    /// the snapshot resume from this exact point with no re-simulation.
    pub fn snapshot(&self) -> crate::snapshot::Snapshot<T>
    where
        T: Clone,
    {
        crate::snapshot::Snapshot::of(self.clone())
    }

    /// Like [`SecureMemory::snapshot`], but consumes the engine —
    /// handy when the warm state is only needed as a fork source from
    /// here on.
    pub fn into_snapshot(self) -> crate::snapshot::Snapshot<T>
    where
        T: Clone,
    {
        crate::snapshot::Snapshot::of(self)
    }

    /// The DRAM model (bank math for same-bank probes).
    pub fn dram(&self) -> &Dram {
        self.mc.dram()
    }

    /// Counter block index covering data block `index`.
    pub fn counter_block_of(&self, index: u64) -> u64 {
        self.enc.counter_block_index(index)
    }

    /// Tree-cache key (node block address index) of `node`.
    pub fn node_key(&self, node: NodeId) -> u64 {
        self.layout.node_addr(node).index()
    }

    /// Whether a tree node block is currently in the metadata cache
    /// (the root is always "cached" on-chip).
    pub fn tree_node_cached(&self, node: NodeId) -> bool {
        self.tree.geometry().is_root(node) || self.mcaches.tree_cached(self.node_key(node))
    }

    /// Whether `index`'s counter block is in the counter cache.
    pub fn counter_cached(&self, index: u64) -> bool {
        self.mcaches.counter_cached(self.counter_block_of(index))
    }

    // ------------------------------------------------------------------
    // Materialization of lazily-initialized memory contents.
    // ------------------------------------------------------------------

    fn materialize_data(&mut self, index: u64) {
        if self.cipher.contains_key(index) {
            return;
        }
        let addr = self.layout.data_addr(index).index();
        let ctr = self.enc.value(index);
        let pt = [0u8; 64];
        let ct = self.crypto.encrypt_block(&pt, addr, ctr);
        let mac = self.crypto.mac_block(&ct, ctr, addr);
        self.cipher.insert(index, ct);
        self.plain.insert(index, pt);
        self.macs.insert(index, mac);
    }

    /// Sets data block `index` to `data` with no timing side effects:
    /// the ciphertext and MAC are recomputed under the block's current
    /// counter, as if the write had drained before the clock started.
    /// Used by [`SecureMemoryBuilder::contents`].
    fn preload_block(&mut self, index: u64, data: Block) {
        let addr = self.layout.data_addr(index).index();
        let ctr = self.enc.value(index);
        let ct = self.crypto.encrypt_block(&data, addr, ctr);
        let mac = self.crypto.mac_block(&ct, ctr, addr);
        self.cipher.insert(index, ct);
        self.plain.insert(index, data);
        self.macs.insert(index, mac);
    }

    fn current_cb_mac(&self, cb: u64) -> Tag {
        let mut bytes = HashBuf::new();
        self.enc.fill_counter_block_bytes(cb, &mut bytes);
        let version = self.tree.leaf_version(cb);
        let addr = self.layout.counter_addr(cb).index();
        self.crypto.mac_bytes(&bytes, version, addr)
    }

    fn materialize_cb_mac(&mut self, cb: u64) {
        if !self.cb_macs.contains_key(cb) {
            let mac = self.current_cb_mac(cb);
            self.cb_macs.insert(cb, mac);
        }
    }

    // ------------------------------------------------------------------
    // Lazy-update cascades (counter + tree writebacks).
    // ------------------------------------------------------------------

    /// Handles the eviction of a dirty counter block: write it to
    /// memory, bump the tree leaf (lazy update) and re-seal its MAC.
    fn counter_writeback(&mut self, cb: u64) {
        self.stats.bump("counter_writebacks");
        let now = self.clock.now();
        let addr = self.layout.counter_addr(cb);
        self.mc.write_through_traced(addr, now, &mut self.tracer);
        let mut bytes = HashBuf::new();
        self.enc.fill_counter_block_bytes(cb, &mut bytes);
        let update = self.tree.record_counter_writeback(cb, &bytes);
        let mac = self.current_cb_mac(cb);
        self.cb_macs.insert(cb, mac);
        self.touch_tree_dirty(update.dirty);
        if let Some(ev) = update.overflow {
            self.handle_tree_overflow(ev);
        }
    }

    /// Brings `node` into the tree cache dirty, cascading any dirty
    /// eviction into a lazy parent update. The root never enters the
    /// cache (it is pinned on-chip).
    fn touch_tree_dirty(&mut self, node: NodeId) {
        if self.tree.geometry().is_root(node) {
            return;
        }
        let key = self.node_key(node);
        let (_, dirty_evict) = self.mcaches.access_tree(key, true);
        if let Some(ev) = dirty_evict {
            self.tree_writeback(ev.key);
        }
    }

    /// Brings `node` into the tree cache clean (verification fill).
    fn fill_tree_clean(&mut self, node: NodeId) {
        if self.tree.geometry().is_root(node) {
            return;
        }
        let key = self.node_key(node);
        let (_, dirty_evict) = self.mcaches.access_tree(key, false);
        if let Some(ev) = dirty_evict {
            self.tree_writeback(ev.key);
        }
    }

    /// Handles the eviction of a dirty tree node: write it back and
    /// propagate the version bump into its parent (lazy update, §V).
    fn tree_writeback(&mut self, node_key: u64) {
        let node = self
            .layout
            .node_of_addr(BlockAddr::new(node_key))
            .expect("tree cache keys are node addresses");
        self.stats.bump("tree_writebacks");
        let now = self.clock.now();
        self.mc.write_through_traced(BlockAddr::new(node_key), now, &mut self.tracer);
        let update = self.tree.propagate_writeback(node);
        self.touch_tree_dirty(update.dirty);
        if let Some(ev) = update.overflow {
            self.handle_tree_overflow(ev);
        }
    }

    /// Tree-counter overflow: the subtree below `ev.node` was reset and
    /// re-hashed; every covered counter block must be re-authenticated.
    /// The memory banks involved stay busy for the duration (this is
    /// the 2000-cycle-scale disturbance of Figure 8).
    fn handle_tree_overflow(&mut self, ev: TreeOverflowEvent) {
        self.stats.bump("tree_overflows");
        self.stats.add("tree_overflow_nodes", ev.nodes_reset);
        let now = self.clock.now();
        let dram = self.config.sim.dram;
        let per_node = dram.row_closed.as_u64() * 2 + self.crypto.hash_latency();
        let per_cb = dram.row_closed.as_u64() * 2 + self.crypto.mac_latency();
        let attached_count = ev.attached.end - ev.attached.start;
        let duration = Cycles::new(ev.nodes_reset * per_node + attached_count * per_cb);
        let until = now + duration;
        // Re-MAC the covered counter blocks against their reset leaf
        // versions, and occupy the touched banks.
        for cb in ev.attached.clone() {
            let mac = self.current_cb_mac(cb);
            self.cb_macs.insert(cb, mac);
            self.mc.occupy_bank_of(self.layout.counter_addr(cb), until);
        }
        for node in self.tree.geometry().subtree_nodes(ev.node) {
            self.mc.occupy_bank_of(self.layout.node_addr(node), until);
        }
        self.stats.add("tree_overflow_busy_cycles", duration.as_u64());
        if T::ENABLED {
            self.tracer.record(
                now,
                TraceEvent::TreeOverflow {
                    nodes_reset: ev.nodes_reset,
                    busy_cycles: duration.as_u64(),
                },
            );
        }
    }

    /// Encryption-counter overflow (Algorithm 1 line 5): re-encrypt the
    /// counter-sharing group under the fresh counters.
    fn handle_enc_overflow(&mut self, written: u64, ev: OverflowEvent) {
        self.stats.bump("enc_overflows");
        let now = self.clock.now();
        let dram = self.config.sim.dram;
        let per_block = dram.row_closed.as_u64() * 2 + self.crypto.pad_latency() * 2;
        if ev.rekey {
            self.crypto.rotate_key();
            self.stats.bump("rekeys");
            // The rotation re-keys the MAC engine too, so every cached
            // counter-block MAC sealed under the old key is now stale
            // and would falsely trip tamper detection on its next
            // verification; re-seal them all.
            let cbs: Vec<u64> = self.cb_macs.keys().collect();
            for cb in cbs {
                let mac = self.current_cb_mac(cb);
                self.cb_macs.insert(cb, mac);
            }
        }
        let group: Vec<u64> = match ev.scope {
            ReencryptScope::Group(g) => g,
            ReencryptScope::AllMemory => {
                // Whole-memory re-encryption: re-encrypt every block we
                // have materialized (unmaterialized blocks re-derive
                // lazily under the new key/counters) and charge the
                // full-region cost.
                let all: Vec<u64> = self.cipher.keys().filter(|&b| b != written).collect();
                let full_cost = Cycles::new(self.layout.data_blocks() * per_block);
                let until = now + full_cost;
                for b in 0..self.layout.data_blocks().min(64) {
                    self.mc.occupy_bank_of(self.layout.data_addr(b), until);
                }
                self.stats.add("reencrypt_busy_cycles", full_cost.as_u64());
                all
            }
        };
        let duration = Cycles::new(group.len() as u64 * per_block);
        let until = now + duration;
        // Old ciphertexts become stale; refresh materialized blocks
        // from ground truth under their (already reset) counters. The
        // pads for the whole group go through one batched AES call.
        let mut reseal: Vec<(u64, u64, u64)> = Vec::with_capacity(group.len());
        for &b in &group {
            if self.plain.contains_key(b) {
                reseal.push((b, self.layout.data_addr(b).index(), self.enc.value(b)));
            } else {
                self.cipher.remove(b);
                self.macs.remove(b);
            }
            self.mc.occupy_bank_of(self.layout.data_addr(b), until);
        }
        let pad_reqs: Vec<(u64, u64)> = reseal.iter().map(|&(_, a, c)| (a, c)).collect();
        let pads = self.crypto.pads(&pad_reqs);
        let cts: Vec<Block> = reseal
            .iter()
            .zip(&pads)
            .map(|(&(b, _, _), pad)| {
                let pt = self.plain.get(b).expect("materialized");
                let mut ct = [0u8; 64];
                for (o, (p, k)) in ct.iter_mut().zip(pt.iter().zip(pad.iter())) {
                    *o = p ^ k;
                }
                ct
            })
            .collect();
        let mac_items: Vec<(&Block, u64, u64)> =
            cts.iter().zip(&reseal).map(|(ct, &(_, a, c))| (ct, c, a)).collect();
        let macs = self.crypto.mac_blocks(&mac_items);
        for ((&(b, _, _), ct), mac) in reseal.iter().zip(&cts).zip(macs) {
            self.cipher.insert(b, *ct);
            self.macs.insert(b, mac);
        }
        self.stats.add("reencrypt_blocks", group.len() as u64);
        self.stats.add("reencrypt_busy_cycles", duration.as_u64());
        if T::ENABLED {
            self.tracer.record(
                now,
                TraceEvent::CounterOverflow {
                    rekey: ev.rekey,
                    group_blocks: group.len() as u64,
                    busy_cycles: duration.as_u64(),
                },
            );
        }
    }

    // ------------------------------------------------------------------
    // Write servicing (encryption counters update at MC service time).
    // ------------------------------------------------------------------

    fn process_drain(&mut self, report: DrainReport) {
        for addr in report.serviced {
            if let Some(index) = self.layout.data_index(addr) {
                self.service_write(index);
            }
        }
    }

    /// Applies the memory-side effects of a serviced data write:
    /// counter increment (+ possible overflow), re-encryption of the
    /// block, MAC refresh and counter-cache update.
    fn service_write(&mut self, index: u64) {
        self.stats.bump("writes_serviced");
        self.materialize_data(index);
        let out = self.enc.increment(index);
        if let Some(ev) = out.overflow {
            self.handle_enc_overflow(index, ev);
        }
        let pt = *self.plain.get(index).expect("materialized");
        let addr = self.layout.data_addr(index).index();
        let ct = self.crypto.encrypt_block(&pt, addr, out.counter);
        let mac = self.crypto.mac_block(&ct, out.counter, addr);
        self.cipher.insert(index, ct);
        self.macs.insert(index, mac);
        // The counter block is touched (and dirtied) in the counter
        // cache; a dirty eviction triggers the lazy tree update.
        let cb = self.enc.counter_block_index(index);
        let (_, dirty_evict) = self.mcaches.access_counter(cb, true);
        if let Some(ev) = dirty_evict {
            self.counter_writeback(ev.key);
        }
    }

    // ------------------------------------------------------------------
    // The Figure-5 fetch path shared by reads and write-allocates.
    // ------------------------------------------------------------------

    /// Fetches `index` from memory after an LLC miss, charging the full
    /// metadata path. Returns `(latency, path)`.
    fn fetch_from_memory(&mut self, index: u64) -> Result<(Cycles, AccessPath), SecureMemError> {
        self.materialize_data(index);
        let now = self.clock.now();
        let addr = self.layout.data_addr(index);
        let mut latency = Cycles::ZERO;

        // 1. Data block from DRAM.
        let data_read = self.mc.read_traced(addr, now, MemRegion::Data, &mut self.tracer);
        latency += data_read.latency;
        if data_read.forwarded {
            // Served from the write queue: the pending (plaintext-side)
            // store is returned directly; decryption and verification
            // do not apply to data that never left the trusted domain.
            self.stats.bump("store_forwards");
            return Ok((latency, AccessPath::StoreForward));
        }

        // 2. Counter lookup.
        let cb = self.enc.counter_block_index(index);
        let (counter_hit, dirty_evict) = self.mcaches.access_counter(cb, false);
        if let Some(ev) = dirty_evict {
            self.counter_writeback(ev.key);
        }

        let path = if counter_hit {
            // Path-2: OTP generation overlapped with the data fetch;
            // only the MAC check is exposed.
            latency += Cycles::new(self.crypto.mac_latency());
            if T::ENABLED {
                self.tracer.record(
                    now,
                    TraceEvent::Crypto {
                        kind: CryptoKind::Mac,
                        ops: 1,
                        cycles: self.crypto.mac_latency(),
                    },
                );
            }
            AccessPath::CounterHit
        } else {
            // Path-3/4: fetch + verify the counter block.
            self.stats.bump("counter_fetches");
            let cb_addr = self.layout.counter_addr(cb);
            let cb_read =
                self.mc.read_traced(cb_addr, now + latency, MemRegion::Counter, &mut self.tracer);
            latency += cb_read.latency + Cycles::new(self.config.mee_extra);

            // Verification walk (Algorithm 2) against cached tree
            // state. Digest checks route through the verification memo
            // so lane-batched runs skip recomputing hashes over node
            // content already verified (the walk's structure, latencies
            // and outcome are value-determined either way).
            let mut bytes = HashBuf::new();
            self.enc.fill_counter_block_bytes(cb, &mut bytes);
            let walk = {
                let tree = &self.tree;
                let layout = &self.layout;
                let mcaches = &self.mcaches;
                tree.verify_counter_block_with(
                    cb,
                    &bytes,
                    |n| {
                        tree.geometry().is_root(n)
                            || mcaches.tree_cached(layout.node_addr(n).index())
                    },
                    &mut crate::batch::check_digest64,
                )
            };
            let loaded_levels = walk.loaded.len() as u8;
            let to_root = loaded_levels == self.tree.geometry().levels() - 1;
            for node in &walk.loaded {
                let n_addr = self.layout.node_addr(*node);
                let n_read = self.mc.read_traced(
                    n_addr,
                    now + latency,
                    MemRegion::TreeNode { level: node.level },
                    &mut self.tracer,
                );
                latency += n_read.latency + Cycles::new(self.config.mee_extra);
                if T::ENABLED {
                    self.tracer.record(
                        now + latency,
                        TraceEvent::TreeWalkLevel { level: node.level, loaded: true },
                    );
                }
            }
            // MEE pipeline overhead: charged once per metadata read
            // (counter block + each loaded node).
            if T::ENABLED {
                let mee_reads = 1 + loaded_levels as u32;
                self.tracer.record(
                    now + latency,
                    TraceEvent::Mee {
                        reads: mee_reads,
                        cycles: self.config.mee_extra * mee_reads as u64,
                    },
                );
            }
            latency += Cycles::new(walk.hash_ops * self.crypto.hash_latency());
            if T::ENABLED && walk.hash_ops > 0 {
                self.tracer.record(
                    now + latency,
                    TraceEvent::Crypto {
                        kind: CryptoKind::Hash,
                        ops: walk.hash_ops as u32,
                        cycles: walk.hash_ops * self.crypto.hash_latency(),
                    },
                );
            }
            if !walk.ok {
                return Err(SecureMemError::TamperDetected(TamperKind::TreeNode));
            }
            // Counter-block MAC check (freshness bound to leaf
            // version), memo-aware: `check_cb_mac` recomputes the tag
            // exactly like [`Self::current_cb_mac`] on a memo miss.
            self.materialize_cb_mac(cb);
            latency += Cycles::new(self.crypto.mac_latency());
            let stored = *self.cb_macs.get(cb).expect("materialized");
            let version = self.tree.leaf_version(cb);
            let cb_mac_ok = crate::batch::check_cb_mac(
                &self.crypto,
                &bytes,
                version,
                self.layout.counter_addr(cb).index(),
                &stored,
            );
            if T::ENABLED {
                self.tracer.record(
                    now + latency,
                    TraceEvent::Crypto {
                        kind: CryptoKind::Mac,
                        ops: 1,
                        cycles: self.crypto.mac_latency(),
                    },
                );
                self.tracer.record(
                    now + latency,
                    TraceEvent::MacCheck { scope: MacScope::CounterBlock, ok: cb_mac_ok },
                );
            }
            if !cb_mac_ok {
                return Err(SecureMemError::TamperDetected(TamperKind::CounterMac));
            }
            // Fill loaded nodes into the tree cache (may cascade).
            for node in walk.loaded.clone() {
                self.fill_tree_clean(node);
            }
            // OTP generation could not overlap the data fetch.
            latency += Cycles::new(self.crypto.pad_latency() + self.crypto.mac_latency());
            if T::ENABLED {
                self.tracer.record(
                    now + latency,
                    TraceEvent::Crypto {
                        kind: CryptoKind::Pad,
                        ops: 1,
                        cycles: self.crypto.pad_latency(),
                    },
                );
                self.tracer.record(
                    now + latency,
                    TraceEvent::Crypto {
                        kind: CryptoKind::Mac,
                        ops: 1,
                        cycles: self.crypto.mac_latency(),
                    },
                );
            }
            AccessPath::TreeWalk { loaded_levels, to_root }
        };

        // 3. Authenticate (and in debug builds decrypt-check) the data
        // block. The MAC verification is memo-aware: a batched sibling
        // lane that already authenticated this exact (ciphertext,
        // counter, address, tag) tuple lets us skip the GHASH
        // recomputation.
        let ctr = self.enc.value(index);
        let a = addr.index();
        let ct = *self.cipher.get(index).expect("materialized");
        let stored_mac = *self.macs.get(index).expect("materialized");
        let data_mac_ok = crate::batch::check_data_mac(&self.crypto, &ct, ctr, a, &stored_mac);
        if T::ENABLED {
            self.tracer.record(
                now + latency,
                TraceEvent::MacCheck { scope: MacScope::Data, ok: data_mac_ok },
            );
        }
        if !data_mac_ok {
            return Err(SecureMemError::TamperDetected(TamperKind::DataMac));
        }
        // Reads serve plaintext from the shadow `plain` map (the model
        // keeps both sides); the actual decryption is a consistency
        // check, so only debug builds pay for it.
        #[cfg(debug_assertions)]
        {
            let pt = self.crypto.decrypt_block(&ct, a, ctr);
            debug_assert_eq!(&pt, self.plain.get(index).expect("materialized"));
        }
        Ok((latency, path))
    }

    /// Applies co-runner eviction bursts to the metadata caches ahead
    /// of an access. Dirty victims go through the normal lazy-update
    /// cascades, exactly as a real co-runner's conflict misses would.
    fn inject_co_runner_pressure(&mut self) {
        let bursts = self.interference.co_runner_evictions();
        for _ in 0..bursts {
            if let Some(ev) = self.mcaches.evict_random_counter(self.interference.rng_mut()) {
                self.stats.bump("corunner_evictions");
                if ev.dirty {
                    self.counter_writeback(ev.key);
                }
            }
            if let Some(ev) = self.mcaches.evict_random_tree(self.interference.rng_mut()) {
                self.stats.bump("corunner_evictions");
                if ev.dirty {
                    self.tree_writeback(ev.key);
                }
            }
        }
    }

    /// Draws the latency perturbation for an access of base latency
    /// `latency`, charging any preemption gap to the clock.
    fn perturb_latency(&mut self, latency: Cycles) -> Perturbation {
        let p = self.interference.perturb(self.clock.now(), latency);
        if let Some(gap) = p.gap {
            self.stats.bump("preemption_gaps");
            self.clock.advance(gap);
        }
        p
    }

    // ------------------------------------------------------------------
    // Public operations.
    // ------------------------------------------------------------------

    /// Reads data block `index` from `core`, returning the decrypted
    /// contents, the observed latency and the access path taken.
    ///
    /// # Errors
    /// Returns [`SecureMemError::TamperDetected`] if any integrity check
    /// fails.
    ///
    /// # Panics
    /// Panics if `index` is outside the protected region.
    pub fn read(&mut self, core: CoreId, index: u64) -> Result<ReadResult, SecureMemError> {
        self.inject_co_runner_pressure();
        let addr = self.layout.data_addr(index);
        let h = self.hier.access_traced(core, addr, false, self.clock.now(), &mut self.tracer);
        let mut latency = h.latency;
        let path = if let Some(level) = h.hit {
            AccessPath::CacheHit(level)
        } else {
            let (mem_lat, path) = self.fetch_from_memory(index)?;
            latency += mem_lat;
            // Install into the hierarchy; dirty LLC victims become
            // memory writes.
            let wbs = self.hier.fill(core, addr, false);
            for wb in wbs {
                let report = self.mc.enqueue_write_traced(wb, self.clock.now(), &mut self.tracer);
                self.process_drain(report);
            }
            path
        };
        let p = self.perturb_latency(latency);
        latency += p.extra_latency;
        self.clock.advance(latency);
        self.materialize_data(index);
        let data = *self.plain.get(index).expect("materialized");
        if T::ENABLED {
            if p.extra_latency > Cycles::ZERO || p.gap.is_some() {
                self.tracer.record(
                    self.clock.now(),
                    TraceEvent::Interference {
                        extra_cycles: p.extra_latency.as_u64(),
                        gap_cycles: p.gap.map(|g| g.as_u64()).unwrap_or(0),
                    },
                );
            }
            self.tracer.record(
                self.clock.now(),
                TraceEvent::ReadDone { path: path.class(), cycles: latency.as_u64() },
            );
        }
        Ok(ReadResult { latency, path, data, invalidated: p.gap.is_some() })
    }

    /// Writes `data` to block `index` from `core`. The write allocates
    /// into the caches (walking the full verification path on a miss,
    /// like a read); the memory-side counter update happens when the
    /// block later drains to the memory controller.
    ///
    /// # Errors
    /// Returns [`SecureMemError::TamperDetected`] if the write-allocate
    /// fill fails verification.
    pub fn write(
        &mut self,
        core: CoreId,
        index: u64,
        data: Block,
    ) -> Result<WriteResult, SecureMemError> {
        self.inject_co_runner_pressure();
        let addr = self.layout.data_addr(index);
        let h = self.hier.access_traced(core, addr, true, self.clock.now(), &mut self.tracer);
        let mut latency = h.latency;
        let path = if let Some(level) = h.hit {
            AccessPath::CacheHit(level)
        } else {
            let (mem_lat, path) = self.fetch_from_memory(index)?;
            latency += mem_lat;
            let wbs = self.hier.fill(core, addr, true);
            for wb in wbs {
                let report = self.mc.enqueue_write_traced(wb, self.clock.now(), &mut self.tracer);
                self.process_drain(report);
            }
            path
        };
        self.materialize_data(index);
        self.plain.insert(index, data);
        let p = self.perturb_latency(latency);
        latency += p.extra_latency;
        self.clock.advance(latency);
        if T::ENABLED {
            if p.extra_latency > Cycles::ZERO || p.gap.is_some() {
                self.tracer.record(
                    self.clock.now(),
                    TraceEvent::Interference {
                        extra_cycles: p.extra_latency.as_u64(),
                        gap_cycles: p.gap.map(|g| g.as_u64()).unwrap_or(0),
                    },
                );
            }
            self.tracer
                .record(self.clock.now(), TraceEvent::WriteDone { cycles: latency.as_u64() });
        }
        Ok(WriteResult { latency, path, invalidated: p.gap.is_some() })
    }

    /// Flushes block `index` out of the cache hierarchy (clflush-like).
    /// A dirty copy is sent to the memory controller's write queue;
    /// any drain it triggers is processed. Returns the flush latency.
    pub fn flush_block(&mut self, index: u64) -> Cycles {
        let addr = self.layout.data_addr(index);
        let dirty = self.hier.flush_block(addr);
        let mut latency = Cycles::new(4);
        if dirty {
            let report = self.mc.enqueue_write_traced(addr, self.clock.now(), &mut self.tracer);
            if report.finished_at > self.clock.now() {
                latency += report.finished_at - self.clock.now();
            }
            self.process_drain(report);
        }
        self.clock.advance(latency);
        latency
    }

    /// Writes and immediately flushes (`write` + `clflush`), the
    /// pattern of persistent applications whose stores reach the memory
    /// controller (§III). Returns the total latency.
    ///
    /// # Errors
    /// Propagates verification failures from the write-allocate fill.
    pub fn write_back(
        &mut self,
        core: CoreId,
        index: u64,
        data: Block,
    ) -> Result<Cycles, SecureMemError> {
        let w = self.write(core, index, data)?;
        let f = self.flush_block(index);
        Ok(w.latency + f)
    }

    /// Drains the memory controller's write queue (sfence-like),
    /// servicing every pending write (counter increments happen here).
    pub fn fence(&mut self) -> Cycles {
        let report = self.mc.flush_writes_traced(self.clock.now(), &mut self.tracer);
        let latency = report.finished_at.saturating_sub(self.clock.now());
        self.process_drain(report);
        self.clock.advance(latency);
        latency
    }

    /// Flushes the metadata caches, running every pending lazy update
    /// (counter writebacks, then tree writebacks level by level). This
    /// models the steady-state eviction pressure a real workload exerts
    /// on the metadata caches.
    pub fn drain_metadata(&mut self) {
        let (dirty_counters, dirty_nodes) = self.mcaches.flush_all();
        for cb in dirty_counters {
            self.counter_writeback(cb);
        }
        let mut nodes: Vec<NodeId> = dirty_nodes
            .into_iter()
            .map(|k| self.layout.node_of_addr(BlockAddr::new(k)).expect("node key"))
            .collect();
        nodes.sort_by_key(|n| n.level);
        for node in nodes {
            let update = self.tree.propagate_writeback(node);
            self.touch_tree_dirty(update.dirty);
            if let Some(ev) = update.overflow {
                self.handle_tree_overflow(ev);
            }
        }
        // The propagation above may have re-dirtied upper nodes; flush
        // until clean (bounded by tree depth).
        for _ in 0..self.tree.geometry().levels() {
            let (cs, ns) = self.mcaches.flush_all();
            if cs.is_empty() && ns.is_empty() {
                break;
            }
            for cb in cs {
                self.counter_writeback(cb);
            }
            let mut nodes: Vec<NodeId> = ns
                .into_iter()
                .map(|k| self.layout.node_of_addr(BlockAddr::new(k)).expect("node key"))
                .collect();
            nodes.sort_by_key(|n| n.level);
            for node in nodes {
                let update = self.tree.propagate_writeback(node);
                self.touch_tree_dirty(update.dirty);
                if let Some(ev) = update.overflow {
                    self.handle_tree_overflow(ev);
                }
            }
        }
    }

    /// Advances the simulated clock (idle time between attack phases).
    pub fn advance_time(&mut self, cycles: Cycles) {
        self.clock.advance(cycles);
    }

    /// Forces counter block `cb` out of the counter cache, running its
    /// lazy tree-leaf update if it was dirty. Returns whether a
    /// writeback happened.
    ///
    /// This models conflict-driven eviction pressure at counter-block
    /// granularity (the effect an attacker achieves with the
    /// counter-set conflict sets of mEvict, or that a memory-intensive
    /// workload produces naturally).
    pub fn force_counter_writeback(&mut self, cb: u64) -> bool {
        match self.mcaches.invalidate_counter(cb) {
            Some(true) => {
                self.counter_writeback(cb);
                true
            }
            _ => false,
        }
    }

    /// Forces tree node `node` out of the tree cache, running its lazy
    /// parent update if it was dirty. Returns whether a writeback
    /// happened.
    pub fn force_tree_writeback(&mut self, node: NodeId) -> bool {
        let key = self.node_key(node);
        match self.mcaches.invalidate_tree(key) {
            Some(true) => {
                self.tree_writeback(key);
                true
            }
            _ => false,
        }
    }

    // ------------------------------------------------------------------
    // Adversarial hooks (physical attacker capabilities of §II-B).
    // ------------------------------------------------------------------

    /// Physically corrupts the stored ciphertext of `index` (spoofing).
    pub fn tamper_data(&mut self, index: u64) {
        self.materialize_data(index);
        self.hier.flush_block(self.layout.data_addr(index));
        if let Some(ct) = self.cipher.get_mut(index) {
            ct[0] ^= 0xff;
        }
    }

    /// Swaps the stored ciphertext+MAC of two blocks (splicing).
    pub fn splice_data(&mut self, a: u64, b: u64) {
        self.materialize_data(a);
        self.materialize_data(b);
        self.hier.flush_block(self.layout.data_addr(a));
        self.hier.flush_block(self.layout.data_addr(b));
        let (ca, cb) = (
            *self.cipher.get(a).expect("materialized"),
            *self.cipher.get(b).expect("materialized"),
        );
        self.cipher.insert(a, cb);
        self.cipher.insert(b, ca);
        let (ma, mb) =
            (*self.macs.get(a).expect("materialized"), *self.macs.get(b).expect("materialized"));
        self.macs.insert(a, mb);
        self.macs.insert(b, ma);
    }

    /// Replays an old `(ciphertext, MAC)` pair for `index`. Returns the
    /// snapshot so tests can stage the replay explicitly.
    pub fn snapshot_data(&mut self, index: u64) -> (Block, Tag) {
        self.materialize_data(index);
        (
            *self.cipher.get(index).expect("materialized"),
            *self.macs.get(index).expect("materialized"),
        )
    }

    /// Restores a previously snapshotted `(ciphertext, MAC)` pair
    /// (a replay attack against data + MAC).
    pub fn replay_data(&mut self, index: u64, snapshot: (Block, Tag)) {
        self.hier.flush_block(self.layout.data_addr(index));
        self.cipher.insert(index, snapshot.0);
        self.macs.insert(index, snapshot.1);
    }

    /// Corrupts a stored tree node (metadata tampering).
    pub fn tamper_tree_node(&mut self, node: NodeId) {
        self.mcaches.invalidate_tree(self.node_key(node));
        self.tree.tamper_node(node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecureConfig;

    fn mem() -> SecureMemory {
        SecureMemory::new(SecureConfig::test_tiny())
    }

    #[test]
    fn read_write_round_trip() {
        let mut m = mem();
        let data = [0xabu8; 64];
        m.write(CoreId(0), 10, data).unwrap();
        assert_eq!(m.read(CoreId(0), 10).unwrap().data, data);
    }

    #[test]
    fn first_read_walks_tree_second_hits_cache() {
        let mut m = mem();
        let r1 = m.read(CoreId(0), 0).unwrap();
        assert!(r1.path.walked_tree(), "cold read must verify: {:?}", r1.path);
        let r2 = m.read(CoreId(0), 0).unwrap();
        assert_eq!(r2.path, AccessPath::CacheHit(HitLevel::L1));
        assert!(r2.latency < r1.latency);
    }

    #[test]
    fn counter_hit_path_is_faster_than_tree_walk() {
        let mut m = mem();
        // Warm the counter cache with block 0's page, then flush the
        // data from the hierarchy and read a different block of the page.
        m.read(CoreId(0), 0).unwrap();
        m.flush_block(1);
        let r = m.read(CoreId(0), 1).unwrap();
        assert_eq!(r.path, AccessPath::CounterHit);
        // Fresh region -> full walk for comparison.
        let far = 63 * 64; // a distant page
        let rw = m.read(CoreId(0), far).unwrap();
        assert!(rw.path.walked_tree());
        assert!(rw.latency > r.latency, "walk {:?} vs hit {:?}", rw.latency, r.latency);
    }

    #[test]
    fn write_back_reaches_memory_and_counts() {
        let mut m = mem();
        m.write_back(CoreId(0), 3, [1u8; 64]).unwrap();
        m.fence();
        assert_eq!(m.stats.get("writes_serviced"), 1);
        assert_eq!(m.counters().minor_value(3), 1);
    }

    #[test]
    fn repeated_writes_increment_minor_until_overflow() {
        let mut m = mem(); // 3-bit minors
        for i in 1..=7u64 {
            m.write_back(CoreId(0), 5, [i as u8; 64]).unwrap();
            m.fence();
            assert_eq!(m.counters().minor_value(5) as u64, i);
        }
        m.write_back(CoreId(0), 5, [8u8; 64]).unwrap();
        m.fence();
        assert_eq!(m.stats.get("enc_overflows"), 1);
        assert_eq!(m.counters().minor_value(5), 1, "reset + trigger write");
        // Data still decrypts after group re-encryption.
        assert_eq!(m.read(CoreId(0), 5).unwrap().data, [8u8; 64]);
    }

    #[test]
    fn group_reencryption_preserves_neighbors() {
        let mut m = mem();
        m.write_back(CoreId(0), 1, [7u8; 64]).unwrap();
        m.fence();
        for _ in 0..8 {
            m.write_back(CoreId(0), 5, [9u8; 64]).unwrap();
            m.fence();
        }
        assert_eq!(m.stats.get("enc_overflows"), 1);
        // Block 1 was re-encrypted with fresh counters; it must still read.
        m.flush_block(1);
        assert_eq!(m.read(CoreId(0), 1).unwrap().data, [7u8; 64]);
    }

    #[test]
    fn data_tamper_detected() {
        let mut m = mem();
        m.write_back(CoreId(0), 2, [5u8; 64]).unwrap();
        m.fence();
        m.tamper_data(2);
        assert_eq!(
            m.read(CoreId(0), 2).unwrap_err(),
            SecureMemError::TamperDetected(TamperKind::DataMac)
        );
    }

    #[test]
    fn splicing_detected() {
        let mut m = mem();
        m.write_back(CoreId(0), 2, [2u8; 64]).unwrap();
        m.write_back(CoreId(0), 9, [9u8; 64]).unwrap();
        m.fence();
        m.splice_data(2, 9);
        assert!(matches!(
            m.read(CoreId(0), 2),
            Err(SecureMemError::TamperDetected(TamperKind::DataMac))
        ));
    }

    #[test]
    fn replay_detected() {
        let mut m = mem();
        m.write_back(CoreId(0), 4, [1u8; 64]).unwrap();
        m.fence();
        let snap = m.snapshot_data(4);
        m.write_back(CoreId(0), 4, [2u8; 64]).unwrap();
        m.fence();
        m.replay_data(4, snap);
        // The replayed pair carries an old counter binding; the MAC
        // recomputed under the current counter must mismatch.
        assert!(matches!(
            m.read(CoreId(0), 4),
            Err(SecureMemError::TamperDetected(TamperKind::DataMac))
        ));
    }

    #[test]
    fn tree_tamper_detected_on_walk() {
        let mut m = mem();
        let cb = m.counter_block_of(0);
        let leaf = m.tree().geometry().leaf_of(cb);
        m.tamper_tree_node(leaf);
        assert_eq!(
            m.read(CoreId(0), 0).unwrap_err(),
            SecureMemError::TamperDetected(TamperKind::TreeNode)
        );
    }

    #[test]
    fn drain_metadata_propagates_leaf_versions() {
        let mut m = mem();
        m.write_back(CoreId(0), 0, [1u8; 64]).unwrap();
        m.fence();
        let cb = m.counter_block_of(0);
        let v0 = m.tree().leaf_version(cb);
        m.drain_metadata();
        assert!(m.tree().leaf_version(cb) > v0, "counter writeback bumps the leaf");
        // Everything still verifies after the lazy cascade.
        m.flush_block(0);
        assert!(m.read(CoreId(0), 0).is_ok());
    }

    #[test]
    fn overflow_occupies_banks_and_slows_timed_read() {
        let mut m = mem();
        // Saturate block 5's 3-bit minor.
        for _ in 0..7 {
            m.write_back(CoreId(0), 5, [1u8; 64]).unwrap();
            m.fence();
        }
        // Baseline timed read of a block in the same page (same bank
        // locality not guaranteed; use the written block's page group).
        let probe = 6u64;
        m.flush_block(probe);
        let quiet = m.read(CoreId(0), probe).unwrap().latency;
        // Trigger the overflow.
        m.write_back(CoreId(0), 5, [2u8; 64]).unwrap();
        m.fence();
        assert_eq!(m.stats.get("enc_overflows"), 1);
        m.flush_block(probe);
        let loud = m.read(CoreId(0), probe).unwrap().latency;
        assert!(
            loud > quiet + Cycles::new(100),
            "overflow re-encryption must delay same-group reads: quiet={quiet}, loud={loud}"
        );
    }

    #[test]
    fn cross_core_reads_share_the_llc() {
        let mut m = mem();
        m.read(CoreId(0), 7).unwrap();
        let r = m.read(CoreId(1), 7).unwrap();
        assert_eq!(r.path, AccessPath::CacheHit(HitLevel::L3));
    }

    #[test]
    fn clock_advances_with_operations() {
        let mut m = mem();
        let t0 = m.now();
        m.read(CoreId(0), 0).unwrap();
        assert!(m.now() > t0);
    }

    #[test]
    fn sgx_config_builds_and_round_trips() {
        let mut m = SecureMemory::new(crate::config::SecureConfigBuilder::sit(64).build());
        m.write(CoreId(0), 0, [3u8; 64]).unwrap();
        assert_eq!(m.read(CoreId(0), 0).unwrap().data, [3u8; 64]);
    }

    #[test]
    fn ht_config_builds_and_detects_tamper() {
        let mut cfg = crate::config::SecureConfigBuilder::ht(64).build();
        cfg.sim = metaleak_sim::config::SimConfig::small();
        cfg.mcache = metaleak_meta::mcache::MetaCacheConfig::small();
        let mut m = SecureMemory::new(cfg);
        m.write_back(CoreId(0), 1, [1u8; 64]).unwrap();
        m.fence();
        assert_eq!(m.read(CoreId(0), 1).unwrap().data, [1u8; 64]);
        // Pick a block in an untouched page so its counter is NOT
        // cached (cached metadata is trusted and skips verification).
        let victim = 40 * 64; // page 40
        let cb = m.counter_block_of(victim);
        assert!(!m.counter_cached(victim));
        let leaf = m.tree().geometry().leaf_of(cb);
        m.tamper_tree_node(leaf);
        assert!(m.read(CoreId(0), victim).is_err());
    }

    #[test]
    fn clean_plan_without_noise_is_deterministic() {
        let run = || {
            let mut m = SecureMemory::new(SecureConfig::test_tiny());
            (0..32u64)
                .map(|b| {
                    let r = m.read(CoreId(0), b % 8).unwrap();
                    assert!(!r.invalidated);
                    r.latency
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn legacy_noise_sd_becomes_a_gaussian_fault() {
        let mut cfg = SecureConfig::test_tiny();
        cfg.sim.noise_sd = 25.0;
        let m = SecureMemory::new(cfg);
        assert!(m.interference().is_active(), "noise_sd must activate the plan");
        assert!(m
            .interference()
            .plan()
            .faults
            .iter()
            .any(|f| matches!(f, metaleak_sim::interference::FaultKind::GaussianNoise { sd } if *sd == 25.0)));
    }

    #[test]
    fn preemption_gaps_invalidate_reads_and_advance_time() {
        let mut cfg = SecureConfig::test_tiny();
        cfg.faults = metaleak_sim::interference::FaultPlan::clean().with(
            metaleak_sim::interference::FaultKind::PreemptionGap {
                rate: 1.0,
                min_cycles: 5_000,
                max_cycles: 5_000,
            },
        );
        let mut m = SecureMemory::new(cfg);
        let t0 = m.now();
        let r = m.read(CoreId(0), 0).unwrap();
        assert!(r.invalidated, "gap must invalidate the measurement");
        assert!(m.now() - t0 >= Cycles::new(5_000), "gap time must pass");
        assert_eq!(m.stats.get("preemption_gaps"), 1);
    }

    #[test]
    fn eviction_bursts_displace_cached_metadata() {
        let mut cfg = SecureConfig::test_tiny();
        cfg.faults = metaleak_sim::interference::FaultPlan::clean()
            .with(metaleak_sim::interference::FaultKind::EvictionBurst { rate: 1.0, burst_len: 4 });
        let mut m = SecureMemory::new(cfg);
        for b in 0..16u64 {
            m.read(CoreId(0), b).unwrap();
        }
        assert!(
            m.stats.get("corunner_evictions") > 0,
            "bursts at rate 1.0 must displace metadata lines"
        );
        // Data still round-trips under the interference.
        m.write_back(CoreId(0), 3, [7u8; 64]).unwrap();
        m.fence();
        m.flush_block(3);
        assert_eq!(m.read(CoreId(0), 3).unwrap().data, [7u8; 64]);
    }
}
