//! Lane-batched trial execution: struct-of-arrays observation
//! collection over K copy-on-write lanes forked from one warm
//! [`Snapshot`], plus the process-wide verification memo that makes
//! batched runs skip redundant integrity-check recomputation.
//!
//! # The lanes knob
//!
//! `METALEAK_LANES` (or [`set_lane_count`]) selects the lane width.
//! `1` — the default — is the exact scalar path the engine has always
//! taken. Any value ≥ 2 enables the verification memo: a global,
//! sharded set of integrity checks that have already been computed and
//! passed, keyed by a 128-bit fingerprint of the *complete* value
//! content of the check (hash input bytes and expected digest;
//! ciphertext, counter, address, stored tag and key identity for MACs
//! — see `Fingerprint` for the collision rationale). On a memo hit
//! the engine
//! skips recomputing the SHA-256 digest or GHASH tag — the outcome is
//! forced: identical inputs were verified identical moments ago. On a
//! miss the check is computed inline exactly as the scalar path does,
//! so novel (including tampered) values take the same code path, fail
//! at the same operation, and produce the same error and trace events
//! as a scalar run.
//!
//! Because the memo changes only *whether a pure recomputation happens*
//! — never a latency (latencies are modeled constants), an event, a
//! data value or an error site — artifacts are byte-identical across
//! lane settings by construction. The `batch_determinism` suite pins
//! this.
//!
//! # Where the speedup comes from
//!
//! Warm trials re-verify the same metadata over and over: an eviction
//! set's blocks keep their (counter, ciphertext, MAC) triple between
//! writes, tree nodes re-verify with unchanged serialized content, and
//! K lanes forked from one snapshot repeat each other's checks almost
//! exactly. All of those collapse to one computation plus set lookups.

use crate::secmem::{ReadResult, SecureMemError, SecureMemory, WriteResult};
use crate::snapshot::Snapshot;
use metaleak_crypto::engine::{Block, CryptoEngine};
use metaleak_crypto::ghash::Tag;
use metaleak_crypto::sha256::digest64;
use metaleak_sim::addr::CoreId;
use metaleak_sim::trace::{PathClass, Tracer};
use std::collections::HashSet;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{OnceLock, RwLock};

// ----------------------------------------------------------------------
// Lane-count knob.
// ----------------------------------------------------------------------

/// 0 = not yet resolved (next read consults `METALEAK_LANES`).
static LANES: AtomicUsize = AtomicUsize::new(0);

/// Sets the lane width programmatically, overriding `METALEAK_LANES`.
/// The bench harness calls this with its (leniently parsed) settings;
/// benches and tests use it to switch modes within one process.
pub fn set_lane_count(k: usize) {
    LANES.store(k.max(1), Ordering::Relaxed);
}

/// The active lane width: the last [`set_lane_count`] value, or on
/// first use the `METALEAK_LANES` environment variable. Unset, empty or
/// unparsable values fall back to 1 (the scalar path); the bench
/// layer's lenient-env convention additionally warns once on bad
/// values.
pub fn lane_count() -> usize {
    let k = LANES.load(Ordering::Relaxed);
    if k != 0 {
        return k;
    }
    let resolved = std::env::var("METALEAK_LANES")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v >= 1)
        .unwrap_or(1);
    // Racing first reads resolve the same env value; storing twice is
    // harmless.
    LANES.store(resolved, Ordering::Relaxed);
    resolved
}

/// Whether the verification memo is active (lane width ≥ 2).
pub fn memo_enabled() -> bool {
    lane_count() > 1
}

// ----------------------------------------------------------------------
// The verification memo.
// ----------------------------------------------------------------------

/// A 128-bit content fingerprint of one fully-evaluated integrity
/// check: two independently-seeded FxHash lanes over a domain tag plus
/// the complete value content of the check (hash input bytes and
/// expected digest; ciphertext, counter, address, stored tag and key
/// identity for MACs). Two checks with equal fingerprints are treated
/// as the same pure computation.
///
/// Fingerprints replace full content keys so the hot path hashes the
/// borrowed inputs exactly once — no key-sized copy into the probe, no
/// second hash inside the set, no content compare on a hit. The memo's
/// population is bounded (≤ `MEMO_SHARDS * MEMO_SHARD_CAP` ≈ 2^18
/// distinct passing checks), so an accidental 128-bit collision
/// between two *distinct* checks is vanishingly unlikely, and check
/// values arise from simulated metadata — nothing is searching for
/// FxHash collisions.
#[derive(Clone, Copy, PartialEq, Eq)]
struct Fingerprint {
    a: u64,
    b: u64,
}

impl Hash for Fingerprint {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // The fingerprint already is a hash; feed lane `a` straight to
        // the identity hasher backing the memo sets.
        state.write_u64(self.a);
    }
}

/// Streaming dual-lane FxHash accumulator producing a [`Fingerprint`].
struct FpHasher {
    a: u64,
    b: u64,
}

impl FpHasher {
    const SEED_A: u64 = 0x51_7c_c1_b7_27_22_0a_95;
    const SEED_B: u64 = 0x9e_37_79_b9_7f_4a_7c_15;

    /// Starts a fingerprint in the domain `tag` (one tag per check
    /// kind, so a digest check can never alias a MAC check).
    fn new(tag: u8) -> Self {
        let mut h = FpHasher { a: 0, b: !0 };
        h.word(tag as u64);
        h
    }

    #[inline]
    fn word(&mut self, w: u64) {
        self.a = (self.a.rotate_left(5) ^ w).wrapping_mul(Self::SEED_A);
        self.b = (self.b.rotate_left(9) ^ w).wrapping_mul(Self::SEED_B);
    }

    #[inline]
    fn bytes(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.word(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Length tag in the top byte keeps short tails of different
            // lengths from colliding after zero-padding.
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.word(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    fn finish(self) -> Fingerprint {
        Fingerprint { a: self.a, b: self.b }
    }
}

/// Hasher that passes a [`Fingerprint`]'s already-mixed lane through
/// unchanged — the set must not pay a second hash per probe.
#[derive(Default)]
struct FpIdentityHasher {
    hash: u64,
}

impl Hasher for FpIdentityHasher {
    fn write(&mut self, _bytes: &[u8]) {
        unreachable!("fingerprints hash via write_u64 only");
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = v;
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[derive(Default, Clone)]
struct BuildFpIdentityHasher;

impl std::hash::BuildHasher for BuildFpIdentityHasher {
    type Hasher = FpIdentityHasher;

    fn build_hasher(&self) -> FpIdentityHasher {
        FpIdentityHasher::default()
    }
}

const MEMO_SHARDS: usize = 16;

type MemoSet = HashSet<Fingerprint, BuildFpIdentityHasher>;

/// Per-shard entry cap: bounds the memo at a few tens of MiB even in
/// day-long fuzz campaigns. Once a shard is full, new checks simply
/// compute inline (correctness is never affected, only reuse).
const MEMO_SHARD_CAP: usize = 1 << 14;

struct Memo {
    shards: [RwLock<MemoSet>; MEMO_SHARDS],
    hits: AtomicU64,
    misses: AtomicU64,
}

fn memo() -> &'static Memo {
    static MEMO: OnceLock<Memo> = OnceLock::new();
    MEMO.get_or_init(|| Memo {
        shards: std::array::from_fn(|_| RwLock::new(MemoSet::default())),
        hits: AtomicU64::new(0),
        misses: AtomicU64::new(0),
    })
}

fn shard_of(fp: Fingerprint) -> usize {
    // Top bits pick the shard; the set's buckets consume the low bits,
    // so the two selections stay independent.
    (fp.a >> 60) as usize % MEMO_SHARDS
}

/// Looks `fp` up; on a miss evaluates `compute` and memoizes a passing
/// result. Returns whether the check holds.
fn check_memo(fp: Fingerprint, compute: impl FnOnce() -> bool) -> bool {
    let m = memo();
    let shard = &m.shards[shard_of(fp)];
    if shard.read().expect("memo shard poisoned").contains(&fp) {
        m.hits.fetch_add(1, Ordering::Relaxed);
        return true;
    }
    m.misses.fetch_add(1, Ordering::Relaxed);
    let ok = compute();
    if ok {
        let mut w = shard.write().expect("memo shard poisoned");
        if w.len() < MEMO_SHARD_CAP {
            w.insert(fp);
        }
    }
    // Failed checks are not memoized: they surface as errors and the
    // simulation stops anyway.
    ok
}

/// Memo-aware `digest64(input) == expected`, the check callback handed
/// to [`metaleak_meta::tree::IntegrityTree::verify_counter_block_with`].
/// Falls back to plain computation when the memo is disabled.
pub(crate) fn check_digest64(input: &[u8], expected: u64) -> bool {
    if !memo_enabled() {
        return digest64(input) == expected;
    }
    let mut h = FpHasher::new(0);
    h.bytes(input);
    h.word(expected);
    check_memo(h.finish(), || digest64(input) == expected)
}

/// Memo-aware data-block MAC verification.
pub(crate) fn check_data_mac(
    crypto: &CryptoEngine,
    ct: &Block,
    ctr: u64,
    addr: u64,
    stored: &Tag,
) -> bool {
    if !memo_enabled() {
        return crypto.mac_block(ct, ctr, addr) == *stored;
    }
    let mut h = FpHasher::new(1);
    h.word(crypto.key_id());
    h.word(crypto.epoch());
    h.word(addr);
    h.word(ctr);
    h.bytes(ct);
    h.bytes(stored);
    check_memo(h.finish(), || crypto.mac_block(ct, ctr, addr) == *stored)
}

/// Memo-aware counter-block MAC verification.
pub(crate) fn check_cb_mac(
    crypto: &CryptoEngine,
    bytes: &[u8],
    version: u64,
    addr: u64,
    stored: &Tag,
) -> bool {
    if !memo_enabled() {
        return crypto.mac_bytes(bytes, version, addr) == *stored;
    }
    let mut h = FpHasher::new(2);
    h.word(crypto.key_id());
    h.word(crypto.epoch());
    h.word(addr);
    h.word(version);
    h.bytes(bytes);
    h.bytes(stored);
    check_memo(h.finish(), || crypto.mac_bytes(bytes, version, addr) == *stored)
}

/// Empties the verification memo and resets its counters (benchmarks
/// and determinism tests use this to compare modes fairly within one
/// process).
pub fn clear_memo() {
    let m = memo();
    for shard in &m.shards {
        shard.write().expect("memo shard poisoned").clear();
    }
    m.hits.store(0, Ordering::Relaxed);
    m.misses.store(0, Ordering::Relaxed);
}

/// `(hits, misses)` of the verification memo since process start (or
/// the last [`clear_memo`]).
pub fn memo_stats() -> (u64, u64) {
    let m = memo();
    (m.hits.load(Ordering::Relaxed), m.misses.load(Ordering::Relaxed))
}

// ----------------------------------------------------------------------
// Lane-batched execution.
// ----------------------------------------------------------------------

/// Struct-of-arrays observations collected across lanes: each call to
/// [`LaneBatch::read_each`] / [`LaneBatch::write_each`] appends one
/// entry per lane to every array, so lane `k`'s `i`-th operation lands
/// at `i * lanes + k` — contiguous per-operation groups that the
/// compare/reduce loops of analysis code (and the autovectorizer) can
/// stream over without pointer chasing.
#[derive(Debug, Clone, Default)]
pub struct LaneObservations {
    /// Observed latency of each operation, in cycles.
    pub latencies: Vec<u64>,
    /// Access-path classification of each operation.
    pub paths: Vec<PathClass>,
    /// Whether a preemption gap invalidated the sample.
    pub invalidated: Vec<bool>,
}

impl LaneObservations {
    /// An empty observation set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of recorded operations (across all lanes).
    pub fn len(&self) -> usize {
        self.latencies.len()
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.latencies.is_empty()
    }

    /// Appends one observation. [`LaneBatch::read_each`] and
    /// [`LaneBatch::write_each`] call this per lane; drivers with
    /// per-lane control flow ([`LaneBatch::run`]) call it themselves to
    /// keep their samples in the same struct-of-arrays layout.
    pub fn push(&mut self, latency: u64, path: PathClass, invalidated: bool) {
        self.latencies.push(latency);
        self.paths.push(path);
        self.invalidated.push(invalidated);
    }
}

/// Error from a lane-batched operation: which lane failed, and how.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LaneError {
    /// The failing lane.
    pub lane: usize,
    /// The engine error it hit.
    pub error: SecureMemError,
}

impl core::fmt::Display for LaneError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "lane {}: {}", self.lane, self.error)
    }
}

impl std::error::Error for LaneError {}

/// Chainable constructor for [`LaneBatch`], mirroring
/// [`SecureMemory::builder`]: lane width and per-lane interference
/// seeds as chained options, then [`LaneBatchBuilder::build`].
#[derive(Debug)]
pub struct LaneBatchBuilder<'s, T: Tracer> {
    snapshot: &'s Snapshot<T>,
    lanes: usize,
    seeds: Vec<u64>,
}

impl<'s, T: Tracer + Clone> LaneBatchBuilder<'s, T> {
    fn new(snapshot: &'s Snapshot<T>) -> Self {
        LaneBatchBuilder { snapshot, lanes: lane_count(), seeds: Vec::new() }
    }

    /// Sets the lane width (defaults to [`lane_count`], the
    /// `METALEAK_LANES` setting).
    pub fn lanes(mut self, k: usize) -> Self {
        self.lanes = k.max(1);
        self
    }

    /// Reseeds lane `k`'s interference stream with `seeds[k]` (see
    /// [`Snapshot::fork_seeded`]); lanes beyond the slice keep the
    /// parent's schedule.
    pub fn seeds(mut self, seeds: impl Into<Vec<u64>>) -> Self {
        self.seeds = seeds.into();
        self
    }

    /// Forks the lanes and builds the batch.
    pub fn build(self) -> LaneBatch<T> {
        let lanes = (0..self.lanes)
            .map(|k| match self.seeds.get(k) {
                Some(&seed) => self.snapshot.fork_seeded(seed),
                None => self.snapshot.fork(),
            })
            .collect();
        LaneBatch { lanes }
    }
}

/// K independent trial lanes forked copy-on-write from one warm
/// [`Snapshot`] and advanced together.
///
/// Each lane is a full [`SecureMemory`]; the batch steps them in
/// lockstep ([`LaneBatch::read_each`], [`LaneBatch::write_each`]) and
/// gathers observations into contiguous struct-of-arrays form
/// ([`LaneObservations`]). Driver code with per-lane control flow uses
/// [`LaneBatch::run`] to advance one lane at a time instead; either
/// way, the lanes share the global verification memo, so work one lane
/// does is never recomputed by its siblings.
///
/// ```
/// use metaleak_engine::prelude::*;
///
/// let mut warm = SecureMemory::new(SecureConfig::test_tiny());
/// warm.write(CoreId(0), 3, [7u8; 64])?;
/// let snap = warm.into_snapshot();
///
/// let mut batch = LaneBatch::builder(&snap).lanes(4).build();
/// let mut obs = LaneObservations::new();
/// batch.read_each(CoreId(0), 3, &mut obs).map_err(|e| e.error)?;
/// assert_eq!(obs.latencies.len(), 4);
/// # Ok::<(), metaleak_engine::secmem::SecureMemError>(())
/// ```
#[derive(Debug, Clone)]
pub struct LaneBatch<T: Tracer> {
    lanes: Vec<SecureMemory<T>>,
}

impl<T: Tracer + Clone> LaneBatch<T> {
    /// Starts a [`LaneBatchBuilder`] forking from `snapshot`.
    pub fn builder(snapshot: &Snapshot<T>) -> LaneBatchBuilder<'_, T> {
        LaneBatchBuilder::new(snapshot)
    }

    /// Number of lanes.
    pub fn lane_count(&self) -> usize {
        self.lanes.len()
    }

    /// Lane `k` (read-only).
    pub fn lane(&self, k: usize) -> &SecureMemory<T> {
        &self.lanes[k]
    }

    /// Lane `k` (mutable, for per-lane driver code).
    pub fn lane_mut(&mut self, k: usize) -> &mut SecureMemory<T> {
        &mut self.lanes[k]
    }

    /// Reads block `index` on every lane, appending one observation per
    /// lane to `obs`.
    ///
    /// # Errors
    /// Stops at the first lane whose verification fails.
    pub fn read_each(
        &mut self,
        core: CoreId,
        index: u64,
        obs: &mut LaneObservations,
    ) -> Result<Vec<ReadResult>, LaneError> {
        let mut results = Vec::with_capacity(self.lanes.len());
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            let r = lane.read(core, index).map_err(|error| LaneError { lane: k, error })?;
            obs.push(r.latency.as_u64(), r.path.class(), r.invalidated);
            results.push(r);
        }
        Ok(results)
    }

    /// Writes `data` to block `index` on every lane, appending one
    /// observation per lane to `obs`.
    ///
    /// # Errors
    /// Stops at the first lane whose write-allocate fill fails
    /// verification.
    pub fn write_each(
        &mut self,
        core: CoreId,
        index: u64,
        data: Block,
        obs: &mut LaneObservations,
    ) -> Result<Vec<WriteResult>, LaneError> {
        let mut results = Vec::with_capacity(self.lanes.len());
        for (k, lane) in self.lanes.iter_mut().enumerate() {
            let r = lane.write(core, index, data).map_err(|error| LaneError { lane: k, error })?;
            obs.push(r.latency.as_u64(), r.path.class(), r.invalidated);
            results.push(r);
        }
        Ok(results)
    }

    /// Flushes block `index` out of every lane's cache hierarchy.
    pub fn flush_each(&mut self, index: u64) {
        for lane in &mut self.lanes {
            lane.flush_block(index);
        }
    }

    /// Drains every lane's memory-controller write queue.
    pub fn fence_each(&mut self) {
        for lane in &mut self.lanes {
            lane.fence();
        }
    }

    /// Runs `f` once per lane (lane index and exclusive lane access),
    /// collecting the per-lane results. This is the entry point for
    /// drivers whose control flow depends on per-lane state (covert
    /// channels, attack runtimes): lanes advance sequentially, but the
    /// shared verification memo still collapses their repeated checks.
    pub fn run<R>(&mut self, mut f: impl FnMut(usize, &mut SecureMemory<T>) -> R) -> Vec<R> {
        self.lanes.iter_mut().enumerate().map(|(k, lane)| f(k, lane)).collect()
    }

    /// Consumes the batch, returning the lanes.
    pub fn into_lanes(self) -> Vec<SecureMemory<T>> {
        self.lanes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SecureConfig;
    use std::sync::Mutex;

    /// Lane count and memo are process globals; tests that touch them
    /// must not interleave.
    static GLOBALS: Mutex<()> = Mutex::new(());

    fn lock_globals() -> std::sync::MutexGuard<'static, ()> {
        GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
    }

    #[test]
    fn lane_count_floor_is_one() {
        let _g = lock_globals();
        set_lane_count(0);
        assert_eq!(lane_count(), 1);
        set_lane_count(1);
    }

    #[test]
    fn memo_hits_after_first_computation() {
        let _g = lock_globals();
        set_lane_count(4);
        clear_memo();
        let input = [7u8; 32];
        let expected = digest64(&input);
        assert!(check_digest64(&input, expected));
        assert!(check_digest64(&input, expected));
        let (hits, misses) = memo_stats();
        assert_eq!((hits, misses), (1, 1));
        // A failing check is never memoized as passing.
        assert!(!check_digest64(&input, expected ^ 1));
        assert!(!check_digest64(&input, expected ^ 1));
        let (_, misses) = memo_stats();
        assert_eq!(misses, 3);
        clear_memo();
        set_lane_count(1);
    }

    #[test]
    fn memo_keys_distinguish_engines() {
        let _g = lock_globals();
        set_lane_count(4);
        clear_memo();
        let e1 = CryptoEngine::new([1u8; 16]);
        let e2 = CryptoEngine::new([2u8; 16]);
        let ct = [5u8; 64];
        let tag = e1.mac_block(&ct, 9, 40);
        assert!(check_data_mac(&e1, &ct, 9, 40, &tag));
        // Same values under a different key must not hit e1's entry.
        assert!(!check_data_mac(&e2, &ct, 9, 40, &tag));
        clear_memo();
        set_lane_count(1);
    }

    #[test]
    fn lanes_match_scalar_forks() {
        let _g = lock_globals();
        let mut warm = SecureMemory::new(SecureConfig::test_tiny());
        for i in 0..8 {
            warm.write(CoreId(0), i, [i as u8; 64]).unwrap();
        }
        warm.fence();
        let snap = warm.into_snapshot();

        // Scalar reference: fork each lane by hand at lanes=1.
        set_lane_count(1);
        let scalar: Vec<(u64, PathClass)> = (0..4)
            .map(|_| {
                let mut mem = snap.fork();
                mem.flush_block(3);
                mem.fence();
                let r = mem.read(CoreId(0), 3).unwrap();
                (r.latency.as_u64(), r.path.class())
            })
            .collect();

        // Batched: same trials through LaneBatch at lanes=4.
        set_lane_count(4);
        clear_memo();
        let mut batch = LaneBatch::builder(&snap).lanes(4).build();
        batch.flush_each(3);
        batch.fence_each();
        let mut obs = LaneObservations::new();
        batch.read_each(CoreId(0), 3, &mut obs).unwrap();
        set_lane_count(1);

        assert_eq!(obs.len(), 4);
        for (k, &(latency, path)) in scalar.iter().enumerate() {
            assert_eq!(obs.latencies[k], latency, "lane {k} latency");
            assert_eq!(obs.paths[k], path, "lane {k} path");
        }
        let (hits, _) = memo_stats();
        assert!(hits > 0, "sibling lanes must reuse each other's checks");
        clear_memo();
    }

    #[test]
    fn builder_seeds_reseed_interference() {
        let warm = SecureMemory::new(SecureConfig::test_tiny());
        let snap = warm.into_snapshot();
        let batch = LaneBatch::builder(&snap).lanes(3).seeds(vec![11, 22]).build();
        assert_eq!(batch.lane_count(), 3);
    }
}
