//! Warm-state snapshot/fork execution.
//!
//! Every MetaLeak experiment spends most of its wall-clock re-running
//! the same deterministic warmup — tree/counter-cache priming, DRAM
//! row-state setup, channel calibration — once per trial. A
//! [`Snapshot`] captures the *entire* simulator state after that
//! warmup; each trial then [`Snapshot::fork`]s the warm state and
//! continues independently, typically with its own `SimRng::split`
//! stream and (when interference is active) its own
//! [`Snapshot::fork_seeded`] fault stream.
//!
//! Forking is O(1), not O(state): the large state components — the
//! integrity tree, the lazily materialized ciphertext/MAC/counter
//! stores, and every set-associative cache — live in persistent
//! chunked arrays (`metaleak_sim::cow`) whose clone is an `Arc`
//! reference bump. A fork therefore *shares* the warm image
//! structurally and path-copies only the chunks it actually dirties,
//! so a trial's cost scales with what it touches, never with the
//! simulated memory size. Capturing the snapshot also seals the
//! attached tracer ([`metaleak_sim::trace::Tracer::seal`]), so traced
//! forks share one immutable copy of the warmup event log and append
//! privately instead of each carrying a deep-copied ring.
//!
//! A fork still *observes* byte-for-byte the state the warmup left
//! behind: caches, metadata caches, integrity tree, encryption
//! counters, DRAM row/bank state, memory-controller queues, the cycle
//! clock and the tracer ring all resume exactly — no re-simulation, no
//! drift. Two forks of one snapshot driven by the same inputs
//! therefore produce identical observations, which is what lets the
//! experiment harness swap re-warmed trials for forked trials without
//! changing a single output byte (see `metaleak-bench`'s
//! `Experiment::with_warmup`).
//!
//! ```
//! use metaleak_engine::config::SecureConfig;
//! use metaleak_engine::secmem::SecureMemory;
//! use metaleak_sim::addr::CoreId;
//!
//! let mut mem = SecureMemory::new(SecureConfig::test_tiny());
//! mem.write(CoreId(0), 5, [3u8; 64]).unwrap(); // warmup
//! let snap = mem.into_snapshot();
//! let mut a = snap.fork();
//! let mut b = snap.fork();
//! assert_eq!(a.read(CoreId(0), 5).unwrap().latency, b.read(CoreId(0), 5).unwrap().latency);
//! ```

use crate::config::SecureConfig;
use crate::secmem::SecureMemory;
use metaleak_sim::clock::Cycles;
use metaleak_sim::trace::{NullTracer, Tracer};

/// An immutable capture of a [`SecureMemory`]'s full state, taken with
/// [`SecureMemory::snapshot`] / [`SecureMemory::into_snapshot`].
///
/// The snapshot itself is inert: it only hands out forks. Keeping it
/// immutable is what makes fork order irrelevant — the fifth fork is
/// identical to the first, so parallel trials can fork in any order on
/// any worker thread.
#[derive(Debug, Clone)]
pub struct Snapshot<T: Tracer = NullTracer> {
    image: SecureMemory<T>,
}

impl<T: Tracer + Clone> Snapshot<T> {
    pub(crate) fn of(mut image: SecureMemory<T>) -> Self {
        // Freeze the warmup's trace history into a shared immutable
        // segment so forks Arc-share it instead of deep-copying the
        // ring (and so warmup events are never double-counted into a
        // trial's private accounting).
        image.seal_tracer();
        Snapshot { image }
    }

    /// Restores the captured state as a fresh, independent engine in
    /// O(1): the fork structurally shares the snapshot's chunked state
    /// behind copy-on-write and pays only for what it later dirties.
    /// Mutating a fork cannot disturb the snapshot or sibling forks.
    ///
    /// The fork resumes the interference fault schedule exactly where
    /// the warmup left it. When forks must instead draw *independent*
    /// fault streams, use [`Snapshot::fork_seeded`].
    pub fn fork(&self) -> SecureMemory<T> {
        self.image.clone()
    }

    /// A [`Snapshot::fork`] whose interference fault schedule restarts
    /// from `seed`, so sibling forks experience independent fault
    /// streams (the warm state itself is still shared byte-for-byte).
    pub fn fork_seeded(&self, seed: u64) -> SecureMemory<T> {
        let mut mem = self.image.clone();
        mem.reseed_interference(seed);
        mem
    }

    /// The captured configuration.
    pub fn config(&self) -> &SecureConfig {
        self.image.config()
    }

    /// The simulated time at which the state was captured (every fork
    /// resumes from this clock value).
    pub fn now(&self) -> Cycles {
        self.image.now()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::SecureConfig;
    use crate::secmem::SecureMemory;
    use metaleak_sim::addr::CoreId;
    use metaleak_sim::interference::{FaultKind, FaultPlan};
    use metaleak_sim::trace::RingTracer;

    fn warmed() -> SecureMemory {
        let mut mem = SecureMemory::new(SecureConfig::test_tiny());
        let core = CoreId(0);
        for b in 0..48u64 {
            mem.write(core, b, [b as u8; 64]).unwrap();
        }
        mem.fence();
        for b in 0..16u64 {
            mem.read(core, b).unwrap();
        }
        mem
    }

    /// A deterministic post-fork workload whose observations depend on
    /// the warm state (cache contents, DRAM rows, clock).
    fn drive(mem: &mut SecureMemory) -> Vec<u64> {
        let core = CoreId(0);
        (0..32u64)
            .map(|i| {
                let b = (i * 7) % 48;
                if i % 5 == 0 {
                    mem.flush_block(b);
                }
                mem.read(core, b).unwrap().latency.as_u64()
            })
            .collect()
    }

    #[test]
    fn forks_resume_identically_and_independently() {
        let mem = warmed();
        let before = mem.now();
        let snap = mem.into_snapshot();
        assert_eq!(snap.now(), before);
        let mut a = snap.fork();
        let mut b = snap.fork();
        assert_eq!(a.now(), before, "fork resumes the captured clock");
        let obs_a = drive(&mut a);
        // Mutating fork `a` must not disturb the snapshot: a later fork
        // still reproduces the same observations.
        let obs_b = drive(&mut b);
        let obs_c = drive(&mut snap.fork());
        assert_eq!(obs_a, obs_b);
        assert_eq!(obs_a, obs_c);
    }

    #[test]
    fn fork_matches_continuing_the_original() {
        let mem = warmed();
        let mut forked = mem.snapshot().fork();
        let mut original = mem;
        assert_eq!(drive(&mut forked), drive(&mut original));
    }

    #[test]
    fn fork_seeded_diverges_only_under_interference() {
        // Clean plan: the interference RNG is never consulted, so
        // reseeding cannot change anything.
        let snap = warmed().into_snapshot();
        assert_eq!(drive(&mut snap.fork_seeded(1)), drive(&mut snap.fork_seeded(2)));

        // Gaussian jitter: sibling forks with different seeds draw
        // different fault streams; the same seed reproduces exactly.
        let cfg = SecureConfig::test_tiny();
        let mut mem = SecureMemory::builder(cfg)
            .faults(FaultPlan::clean().with(FaultKind::GaussianNoise { sd: 40.0 }))
            .build();
        for b in 0..48u64 {
            mem.write(CoreId(0), b, [b as u8; 64]).unwrap();
        }
        mem.fence();
        let snap = mem.into_snapshot();
        let x = drive(&mut snap.fork_seeded(11));
        let y = drive(&mut snap.fork_seeded(12));
        let x2 = drive(&mut snap.fork_seeded(11));
        assert_eq!(x, x2, "same fork seed must reproduce the fault schedule");
        assert_ne!(x, y, "different fork seeds must draw independent fault streams");
    }

    #[test]
    fn traced_forks_carry_the_warmup_ring() {
        let mut mem =
            SecureMemory::builder(SecureConfig::test_tiny()).tracer(RingTracer::new(4096)).build();
        mem.write(CoreId(0), 3, [1u8; 64]).unwrap();
        mem.fence();
        let warm_events = mem.tracer().clone().into_log().recorded();
        assert!(warm_events > 0);
        let snap = mem.into_snapshot();
        let mut fork = snap.fork();
        fork.read(CoreId(0), 3).unwrap();
        let log = fork.into_tracer().into_log();
        assert!(
            log.recorded() > warm_events,
            "fork must extend the captured ring ({} events), got {}",
            warm_events,
            log.recorded()
        );
    }
}
