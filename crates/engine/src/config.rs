//! Secure-processor configuration presets (Table I).

use metaleak_meta::enc_counter::{CounterScheme, CounterWidths};
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_meta::tree::TreeKind;
use metaleak_sim::addr::BlockAddr;
use metaleak_sim::config::SimConfig;
use metaleak_sim::interference::FaultPlan;

/// Full configuration of a [`crate::secmem::SecureMemory`].
#[derive(Debug, Clone, PartialEq)]
pub struct SecureConfig {
    /// Cache hierarchy / DRAM / memory-controller parameters.
    pub sim: SimConfig,
    /// Metadata cache geometry.
    pub mcache: MetaCacheConfig,
    /// Encryption-counter scheme.
    pub scheme: CounterScheme,
    /// Encryption-counter widths.
    pub enc_widths: CounterWidths,
    /// Integrity-tree design.
    pub tree_kind: TreeKind,
    /// Integrity-tree counter widths.
    pub tree_widths: CounterWidths,
    /// Protected data region size in pages.
    pub data_pages: u64,
    /// First block of the protected region.
    pub data_base: BlockAddr,
    /// Extra per-metadata-memory-access latency (models the SGX MEE
    /// pipeline; 0 for the academic designs).
    pub mee_extra: u64,
    /// AES key for the crypto engine.
    pub key: [u8; 16],
    /// Adversarial-interference fault plan. The engine merges the
    /// legacy `sim.noise_sd` Gaussian jitter into this plan at
    /// construction, so `clean()` plus a nonzero `noise_sd` reproduces
    /// the historical noise model exactly.
    pub faults: FaultPlan,
}

impl SecureConfig {
    /// A small, noise-free configuration for fast unit tests, with
    /// narrow counters so overflow is cheap to trigger.
    pub fn test_tiny() -> Self {
        SecureConfigBuilder::test_tiny().build()
    }

    /// Number of protected data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_pages * metaleak_sim::addr::BLOCKS_PER_PAGE as u64
    }
}

/// Chainable constructor for [`SecureConfig`]: start from one of the
/// Table-I preset designs ([`SecureConfigBuilder::sct`],
/// [`SecureConfigBuilder::ht`], [`SecureConfigBuilder::sit`]), override
/// the knobs that differ, and [`SecureConfigBuilder::build`].
///
/// ```
/// use metaleak_engine::config::SecureConfigBuilder;
/// use metaleak_sim::interference::FaultPlan;
///
/// let cfg = SecureConfigBuilder::sct(1024)
///     .tree_minor_bits(5)
///     .noise_sd(12.0)
///     .faults(FaultPlan::clean().seeded(7))
///     .build();
/// assert_eq!(cfg.tree_widths.minor_bits, 5);
/// ```
#[derive(Debug, Clone)]
pub struct SecureConfigBuilder {
    cfg: SecureConfig,
}

impl SecureConfigBuilder {
    /// The paper's primary simulated design: split counters + split
    /// counter tree (VAULT-style; Table I).
    pub fn sct(data_pages: u64) -> Self {
        SecureConfigBuilder {
            cfg: SecureConfig {
                sim: SimConfig::default(),
                mcache: MetaCacheConfig::default(),
                scheme: CounterScheme::Split,
                enc_widths: CounterWidths { minor_bits: 7, mono_bits: 64 },
                tree_kind: TreeKind::SplitCounter,
                tree_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
                data_pages,
                data_base: BlockAddr::new(0x10000),
                mee_extra: 0,
                key: *b"metaleak-sct-key",
                faults: FaultPlan::clean(),
            },
        }
    }

    /// The hash-tree design (Bonsai Merkle Tree over counters \[12\]).
    pub fn ht(data_pages: u64) -> Self {
        Self::sct(data_pages).tree_kind(TreeKind::Hash).key(*b"metaleak-ht-key!")
    }

    /// The SGX-like design (the paper's SIT configuration): monolithic
    /// 56-bit encryption counters, the 8-ary SGX integrity tree, and
    /// the slower MEE latency profile of Figure 7 (150–700 cycles).
    pub fn sit(data_pages: u64) -> Self {
        let mut sim = SimConfig::default();
        // SGX memory reads inside the EPC are markedly slower; Figure 7
        // shows ~150 cy for a counter-cached read and ~650 cy when the
        // tree misses at every level.
        sim.dram.row_hit = 80.into();
        sim.dram.row_closed = 110.into();
        sim.dram.row_conflict = 150.into();
        SecureConfigBuilder {
            cfg: SecureConfig {
                sim,
                mcache: MetaCacheConfig::default(),
                scheme: CounterScheme::Monolithic,
                enc_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
                tree_kind: TreeKind::Sgx,
                tree_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
                data_pages,
                data_base: BlockAddr::new(0x10000),
                mee_extra: 40,
                key: *b"metaleak-sgx-key",
                faults: FaultPlan::clean(),
            },
        }
    }

    /// A small, noise-free configuration for fast unit tests, with
    /// narrow counters so overflow is cheap to trigger.
    pub fn test_tiny() -> Self {
        Self::sct(64)
            .sim(SimConfig::small())
            .mcache(MetaCacheConfig::small())
            .enc_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
            .tree_widths(CounterWidths { minor_bits: 3, mono_bits: 16 })
    }

    /// Resumes building from an existing configuration.
    pub fn from_config(cfg: SecureConfig) -> Self {
        SecureConfigBuilder { cfg }
    }

    /// Overrides the cache-hierarchy / DRAM / memory-controller model.
    pub fn sim(mut self, sim: SimConfig) -> Self {
        self.cfg.sim = sim;
        self
    }

    /// Overrides the metadata-cache geometry.
    pub fn mcache(mut self, mcache: MetaCacheConfig) -> Self {
        self.cfg.mcache = mcache;
        self
    }

    /// Overrides the encryption-counter scheme.
    pub fn scheme(mut self, scheme: CounterScheme) -> Self {
        self.cfg.scheme = scheme;
        self
    }

    /// Overrides the encryption-counter widths.
    pub fn enc_widths(mut self, widths: CounterWidths) -> Self {
        self.cfg.enc_widths = widths;
        self
    }

    /// Overrides the integrity-tree design.
    pub fn tree_kind(mut self, kind: TreeKind) -> Self {
        self.cfg.tree_kind = kind;
        self
    }

    /// Overrides the integrity-tree counter widths.
    pub fn tree_widths(mut self, widths: CounterWidths) -> Self {
        self.cfg.tree_widths = widths;
        self
    }

    /// Overrides only the tree minor-counter width (the Figure-14
    /// symbol-capacity knob), keeping the monotonic width.
    pub fn tree_minor_bits(mut self, minor_bits: u8) -> Self {
        self.cfg.tree_widths.minor_bits = minor_bits;
        self
    }

    /// Overrides the protected-region size in pages.
    pub fn data_pages(mut self, pages: u64) -> Self {
        self.cfg.data_pages = pages;
        self
    }

    /// Overrides the first block of the protected region.
    pub fn data_base(mut self, base: BlockAddr) -> Self {
        self.cfg.data_base = base;
        self
    }

    /// Overrides the extra per-metadata-access MEE latency.
    pub fn mee_extra(mut self, cycles: u64) -> Self {
        self.cfg.mee_extra = cycles;
        self
    }

    /// Overrides the AES key.
    pub fn key(mut self, key: [u8; 16]) -> Self {
        self.cfg.key = key;
        self
    }

    /// Overrides the adversarial-interference fault plan.
    pub fn faults(mut self, plan: FaultPlan) -> Self {
        self.cfg.faults = plan;
        self
    }

    /// Overrides the legacy Gaussian latency-jitter knob (folded into
    /// the fault plan at engine construction).
    pub fn noise_sd(mut self, sd: f64) -> Self {
        self.cfg.sim.noise_sd = sd;
        self
    }

    /// Finalizes the configuration.
    pub fn build(self) -> SecureConfig {
        self.cfg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let sct = SecureConfigBuilder::sct(1024).build();
        let ht = SecureConfigBuilder::ht(1024).build();
        let sit = SecureConfigBuilder::sit(1024).build();
        assert_eq!(sct.scheme, CounterScheme::Split);
        assert_eq!(ht.tree_kind, TreeKind::Hash);
        assert_eq!(ht.scheme, CounterScheme::Split);
        assert_eq!(sit.scheme, CounterScheme::Monolithic);
        assert_eq!(sit.tree_kind, TreeKind::Sgx);
        assert!(sit.mee_extra > 0);
        assert!(sit.sim.dram.row_hit > sct.sim.dram.row_hit);
    }

    #[test]
    fn data_blocks_math() {
        assert_eq!(SecureConfigBuilder::sct(4).build().data_blocks(), 256);
    }

    #[test]
    fn builder_overrides_compose() {
        let cfg = SecureConfigBuilder::sct(128)
            .tree_minor_bits(4)
            .mee_extra(13)
            .noise_sd(5.0)
            .data_base(BlockAddr::new(0x20000))
            .build();
        assert_eq!(cfg.tree_widths.minor_bits, 4);
        assert_eq!(cfg.tree_widths.mono_bits, 56);
        assert_eq!(cfg.mee_extra, 13);
        assert_eq!(cfg.sim.noise_sd, 5.0);
        assert_eq!(cfg.data_base, BlockAddr::new(0x20000));
        let resumed = SecureConfigBuilder::from_config(cfg.clone()).data_pages(64).build();
        assert_eq!(resumed.tree_widths.minor_bits, 4);
        assert_eq!(resumed.data_pages, 64);
    }
}
