//! Secure-processor configuration presets (Table I).

use metaleak_meta::enc_counter::{CounterScheme, CounterWidths};
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_meta::tree::TreeKind;
use metaleak_sim::addr::BlockAddr;
use metaleak_sim::config::SimConfig;
use metaleak_sim::interference::FaultPlan;

/// Full configuration of a [`crate::secmem::SecureMemory`].
#[derive(Debug, Clone, PartialEq)]
pub struct SecureConfig {
    /// Cache hierarchy / DRAM / memory-controller parameters.
    pub sim: SimConfig,
    /// Metadata cache geometry.
    pub mcache: MetaCacheConfig,
    /// Encryption-counter scheme.
    pub scheme: CounterScheme,
    /// Encryption-counter widths.
    pub enc_widths: CounterWidths,
    /// Integrity-tree design.
    pub tree_kind: TreeKind,
    /// Integrity-tree counter widths.
    pub tree_widths: CounterWidths,
    /// Protected data region size in pages.
    pub data_pages: u64,
    /// First block of the protected region.
    pub data_base: BlockAddr,
    /// Extra per-metadata-memory-access latency (models the SGX MEE
    /// pipeline; 0 for the academic designs).
    pub mee_extra: u64,
    /// AES key for the crypto engine.
    pub key: [u8; 16],
    /// Adversarial-interference fault plan. The engine merges the
    /// legacy `sim.noise_sd` Gaussian jitter into this plan at
    /// construction, so `clean()` plus a nonzero `noise_sd` reproduces
    /// the historical noise model exactly.
    pub faults: FaultPlan,
}

impl SecureConfig {
    /// The paper's primary simulated design: split counters + split
    /// counter tree (VAULT-style; Table I).
    pub fn sct(data_pages: u64) -> Self {
        SecureConfig {
            sim: SimConfig::default(),
            mcache: MetaCacheConfig::default(),
            scheme: CounterScheme::Split,
            enc_widths: CounterWidths { minor_bits: 7, mono_bits: 64 },
            tree_kind: TreeKind::SplitCounter,
            tree_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
            data_pages,
            data_base: BlockAddr::new(0x10000),
            mee_extra: 0,
            key: *b"metaleak-sct-key",
            faults: FaultPlan::clean(),
        }
    }

    /// The hash-tree design (Bonsai Merkle Tree over counters \[12\]).
    pub fn ht(data_pages: u64) -> Self {
        SecureConfig {
            tree_kind: TreeKind::Hash,
            key: *b"metaleak-ht-key!",
            ..Self::sct(data_pages)
        }
    }

    /// The SGX-like configuration: monolithic 56-bit encryption
    /// counters, the 8-ary SGX integrity tree, and the slower MEE
    /// latency profile of Figure 7 (150–700 cycles).
    pub fn sgx(data_pages: u64) -> Self {
        let mut sim = SimConfig::default();
        // SGX memory reads inside the EPC are markedly slower; Figure 7
        // shows ~150 cy for a counter-cached read and ~650 cy when the
        // tree misses at every level.
        sim.dram.row_hit = 80.into();
        sim.dram.row_closed = 110.into();
        sim.dram.row_conflict = 150.into();
        SecureConfig {
            sim,
            mcache: MetaCacheConfig::default(),
            scheme: CounterScheme::Monolithic,
            enc_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
            tree_kind: TreeKind::Sgx,
            tree_widths: CounterWidths { minor_bits: 7, mono_bits: 56 },
            data_pages,
            data_base: BlockAddr::new(0x10000),
            mee_extra: 40,
            key: *b"metaleak-sgx-key",
            faults: FaultPlan::clean(),
        }
    }

    /// A small, noise-free configuration for fast unit tests, with
    /// narrow counters so overflow is cheap to trigger.
    pub fn test_tiny() -> Self {
        let mut cfg = Self::sct(64);
        cfg.sim = SimConfig::small();
        cfg.mcache = MetaCacheConfig::small();
        cfg.enc_widths = CounterWidths { minor_bits: 3, mono_bits: 16 };
        cfg.tree_widths = CounterWidths { minor_bits: 3, mono_bits: 16 };
        cfg
    }

    /// Number of protected data blocks.
    pub fn data_blocks(&self) -> u64 {
        self.data_pages * metaleak_sim::addr::BLOCKS_PER_PAGE as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_differ_where_expected() {
        let sct = SecureConfig::sct(1024);
        let ht = SecureConfig::ht(1024);
        let sgx = SecureConfig::sgx(1024);
        assert_eq!(sct.scheme, CounterScheme::Split);
        assert_eq!(ht.tree_kind, TreeKind::Hash);
        assert_eq!(ht.scheme, CounterScheme::Split);
        assert_eq!(sgx.scheme, CounterScheme::Monolithic);
        assert_eq!(sgx.tree_kind, TreeKind::Sgx);
        assert!(sgx.mee_extra > 0);
        assert!(sgx.sim.dram.row_hit > sct.sim.dram.row_hit);
    }

    #[test]
    fn data_blocks_math() {
        assert_eq!(SecureConfig::sct(4).data_blocks(), 256);
    }
}
