//! # metaleak-engine
//!
//! The secure memory engine of the MetaLeak reproduction: the component
//! that a secure processor places between the last-level cache and
//! DRAM. It combines
//!
//! - counter-mode encryption over [`metaleak_meta::enc_counter`]
//!   (Algorithm 1, incl. overflow re-encryption),
//! - per-block MAC authentication bound to counters and addresses,
//! - integrity-tree verification over [`metaleak_meta::tree`]
//!   (Algorithm 2, lazy update, subtree resets), and
//! - the memory-side timing model of [`metaleak_sim`],
//!
//! exposing the four access paths of Figure 5 with genuine tamper /
//! replay detection and cycle-accounted latencies.
//!
//! ```
//! use metaleak_engine::prelude::*;
//!
//! let mut mem = SecureMemory::new(SecureConfig::test_tiny());
//! mem.write(CoreId(0), 0, [1u8; 64])?;
//! let read = mem.read(CoreId(0), 0)?;
//! assert_eq!(read.data, [1u8; 64]);
//! # Ok::<(), metaleak_engine::secmem::SecureMemError>(())
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod config;
pub mod secmem;
pub mod snapshot;

pub use batch::{LaneBatch, LaneBatchBuilder, LaneError, LaneObservations};
pub use config::{SecureConfig, SecureConfigBuilder};
pub use secmem::{
    AccessPath, ReadResult, SecureMemError, SecureMemory, SecureMemoryBuilder, TamperKind,
    WriteResult,
};
pub use snapshot::Snapshot;

/// Version tag of the engine's in-memory state representation.
///
/// Bumped whenever the layout of [`SecureMemory`]'s state containers
/// changes in a way that alters what a snapshot or a journaled trial
/// value means — most recently the move to structurally-shared
/// copy-on-write state. The supervisor records this tag in each
/// journal's identity header so a resumed run never replays trials
/// journaled by a binary with a different state shape.
pub const STATE_SHAPE: &str = "cow-v1";

/// Convenient glob import: the blessed import surface of the engine.
///
/// Downstream crates and bins should reach for `use
/// metaleak_engine::prelude::*;` rather than deep module paths — every
/// type needed to configure, build, run, snapshot and lane-batch the
/// engine is re-exported here, and additions to this list are the
/// engine's API-stability commitment.
pub mod prelude {
    pub use crate::batch::{
        lane_count, set_lane_count, LaneBatch, LaneBatchBuilder, LaneError, LaneObservations,
    };
    pub use crate::config::{SecureConfig, SecureConfigBuilder};
    pub use crate::secmem::{
        AccessPath, ReadResult, SecureMemError, SecureMemory, SecureMemoryBuilder, TamperKind,
        WriteResult,
    };
    pub use crate::snapshot::Snapshot;
    pub use metaleak_sim::addr::CoreId;
    pub use metaleak_sim::clock::Cycles;
    pub use metaleak_sim::interference::{FaultKind, FaultPlan, SampleFate};
    pub use metaleak_sim::trace::{NullTracer, PathClass, RingTracer, TraceLog, Tracer};
}
