//! Memory-controller scenario tests: the queueing behaviours that
//! MetaLeak-C's mPreset step depends on (§VI-B), exercised end to end
//! against the raw controller.

use metaleak_sim::addr::BlockAddr;
use metaleak_sim::clock::Cycles;
use metaleak_sim::config::{DramConfig, MemCtlConfig};
use metaleak_sim::dram::Dram;
use metaleak_sim::memctl::MemoryController;

fn mc() -> MemoryController {
    MemoryController::new(MemCtlConfig::default(), Dram::new(DramConfig::default()))
}

#[test]
fn merged_writes_are_serviced_once() {
    // The paper's concern: merging hides counter increments. Ten writes
    // to the same block must drain as a single service.
    let mut m = mc();
    for _ in 0..10 {
        m.enqueue_write(BlockAddr::new(7), Cycles::ZERO);
    }
    assert!(m.occupancy_consistent(), "merges must keep the occupancy index in sync");
    let report = m.flush_writes(Cycles::ZERO);
    assert_eq!(report.serviced, vec![BlockAddr::new(7)]);
    assert_eq!(m.stats.get("write_merged"), 9);
    assert_eq!(m.stats.get("write_serviced"), 1);
    assert!(m.occupancy_consistent());
}

#[test]
fn redundant_writes_push_out_pending_ones() {
    // The attacker's flush trick: filling the queue with redundant
    // writes forces the earlier (victim) writes to service first.
    let mut m = mc();
    let victim = BlockAddr::new(1);
    m.enqueue_write(victim, Cycles::ZERO);
    let mut serviced_victim = false;
    for i in 0..64u64 {
        let r = m.enqueue_write(BlockAddr::new(1000 + i), Cycles::ZERO);
        assert!(m.occupancy_consistent(), "index in sync after enqueue {i}");
        if r.serviced.contains(&victim) {
            serviced_victim = true;
            // FIFO: the victim must be the first serviced write.
            assert_eq!(r.serviced[0], victim);
            assert!(!m.write_pending(victim), "serviced victim must leave the index");
            break;
        }
    }
    assert!(serviced_victim, "watermark drain must reach the victim write");
}

#[test]
fn forwarding_disappears_after_drain() {
    let mut m = mc();
    let b = BlockAddr::new(9);
    m.enqueue_write(b, Cycles::ZERO);
    assert!(m.read(b, Cycles::ZERO).forwarded);
    m.flush_writes(Cycles::ZERO);
    assert!(!m.read(b, Cycles::ZERO).forwarded);
    assert!(m.occupancy_consistent(), "forwarding path must not mutate the index");
}

#[test]
fn drain_timestamps_are_cumulative_and_ordered() {
    let mut m = mc();
    for i in 0..8u64 {
        m.enqueue_write(BlockAddr::new(i * 97), Cycles::ZERO);
    }
    let t0 = Cycles::new(1000);
    let report = m.flush_writes(t0);
    assert_eq!(report.serviced.len(), 8);
    assert!(report.finished_at > t0, "drain takes time");
    // Banks written during the drain stay busy past the drain window's
    // internal completion points.
    let last = *report.serviced.last().unwrap();
    assert!(m.bank_free_at(last) > t0);
}

#[test]
fn bank_occupancy_delays_only_that_bank() {
    let mut m = mc();
    let a = BlockAddr::new(0);
    let dram_cfg = DramConfig::default();
    // Find a block in a different bank.
    let mut other = BlockAddr::new(1);
    {
        let d = Dram::new(dram_cfg);
        while d.same_bank(a, other) {
            other = other.add(1);
        }
    }
    m.occupy_bank_of(a, Cycles::new(10_000));
    let blocked = m.read(a, Cycles::new(0));
    let free = m.read(other, Cycles::new(0));
    assert!(blocked.waited.as_u64() >= 9_000);
    assert_eq!(free.waited, Cycles::ZERO);
}

#[test]
fn row_locality_shows_through_the_controller() {
    let mut m = mc();
    let b = BlockAddr::new(4);
    let first = m.read(b, Cycles::ZERO);
    // Wait out the bank-busy window left by the first read.
    let later = m.bank_free_at(b) + Cycles::new(1);
    let second = m.read(b, later);
    assert!(
        second.latency < first.latency,
        "row hit ({:?}) must beat row open ({:?})",
        second.latency,
        first.latency
    );
}

#[test]
fn watermark_drain_leaves_low_water_level() {
    let cfg = MemCtlConfig::default();
    let mut m = mc();
    for i in 0..(cfg.write_drain_watermark as u64) {
        m.enqueue_write(BlockAddr::new(i), Cycles::ZERO);
    }
    assert_eq!(m.write_queue_len(), cfg.write_drain_watermark / 2);
}
