//! Property tests for the cache model: the set-associative cache must
//! agree with a naive reference model under arbitrary access traces.
//!
//! Randomized inputs come from seeded [`SimRng`] loops so every run is
//! deterministic and failures are reproducible from the printed seed.

use metaleak_sim::cache::SetAssocCache;
use metaleak_sim::config::CacheConfig;
use metaleak_sim::rng::SimRng;
use std::collections::HashMap;

/// Reference model: per-set vectors with explicit LRU timestamps.
#[derive(Default)]
struct RefCache {
    sets: HashMap<usize, Vec<(u64, bool, u64)>>, // (key, dirty, stamp)
    tick: u64,
    num_sets: usize,
    ways: usize,
}

impl RefCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        RefCache { num_sets, ways, ..Default::default() }
    }

    fn access(&mut self, key: u64, write: bool) -> (bool, Option<(u64, bool)>) {
        self.tick += 1;
        let set = self.sets.entry((key % self.num_sets as u64) as usize).or_default();
        if let Some(line) = set.iter_mut().find(|l| l.0 == key) {
            line.1 |= write;
            line.2 = self.tick;
            return (true, None);
        }
        let mut evicted = None;
        if set.len() >= self.ways {
            let (idx, _) = set.iter().enumerate().min_by_key(|(_, l)| l.2).expect("nonempty");
            let victim = set.remove(idx);
            evicted = Some((victim.0, victim.1));
        }
        set.push((key, write, self.tick));
        (false, evicted)
    }

    fn contains(&self, key: u64) -> bool {
        self.sets
            .get(&((key % self.num_sets as u64) as usize))
            .is_some_and(|s| s.iter().any(|l| l.0 == key))
    }
}

#[test]
fn cache_matches_reference_model() {
    for seed in 0..64u64 {
        let mut rng = SimRng::seed_from(0xCAC4E000 + seed);
        // 4 sets x 2 ways.
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(4 * 2 * 64, 2, 1));
        let mut reference = RefCache::new(4, 2);
        let n = 1 + rng.index(300);
        for _ in 0..n {
            let key = rng.below(64);
            let write = rng.chance(0.5);
            let got = cache.access(key, write);
            let (hit, evicted) = reference.access(key, write);
            assert_eq!(got.hit, hit, "seed {seed}: hit mismatch on {key}");
            assert_eq!(
                got.evicted.map(|e| (e.key, e.dirty)),
                evicted,
                "seed {seed}: eviction mismatch on {key}"
            );
            assert_eq!(cache.contains(key), reference.contains(key), "seed {seed}");
        }
    }
}

#[test]
fn residency_never_exceeds_capacity() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from(0xCAC4E100 + seed);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(8 * 4 * 64, 4, 1));
        let n = 1 + rng.index(500);
        for _ in 0..n {
            cache.access(rng.below(1000), false);
            assert!(cache.len() <= 32, "seed {seed}");
        }
    }
}

#[test]
fn flush_returns_exactly_the_dirty_set() {
    for seed in 0..32u64 {
        let mut rng = SimRng::seed_from(0xCAC4E200 + seed);
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(64 * 64, 64, 1));
        // Fully associative-ish (one set would need cap = ways): use
        // enough ways that nothing evicts, then flush.
        let mut dirty = std::collections::HashSet::new();
        let n = 1 + rng.index(100);
        for _ in 0..n {
            let key = rng.below(32);
            let write = rng.chance(0.5);
            cache.access(key, write);
            if write {
                dirty.insert(key);
            }
        }
        let mut flushed = cache.flush_all();
        flushed.sort_unstable();
        let mut expect: Vec<u64> = dirty.into_iter().collect();
        expect.sort_unstable();
        assert_eq!(flushed, expect, "seed {seed}");
        assert!(cache.is_empty(), "seed {seed}");
    }
}
