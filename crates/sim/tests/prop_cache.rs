//! Property tests for the cache model: the set-associative cache must
//! agree with a naive reference model under arbitrary access traces.

use metaleak_sim::cache::SetAssocCache;
use metaleak_sim::config::CacheConfig;
use proptest::prelude::*;
use std::collections::HashMap;

/// Reference model: per-set vectors with explicit LRU timestamps.
#[derive(Default)]
struct RefCache {
    sets: HashMap<usize, Vec<(u64, bool, u64)>>, // (key, dirty, stamp)
    tick: u64,
    num_sets: usize,
    ways: usize,
}

impl RefCache {
    fn new(num_sets: usize, ways: usize) -> Self {
        RefCache { num_sets, ways, ..Default::default() }
    }

    fn access(&mut self, key: u64, write: bool) -> (bool, Option<(u64, bool)>) {
        self.tick += 1;
        let set = self.sets.entry((key % self.num_sets as u64) as usize).or_default();
        if let Some(line) = set.iter_mut().find(|l| l.0 == key) {
            line.1 |= write;
            line.2 = self.tick;
            return (true, None);
        }
        let mut evicted = None;
        if set.len() >= self.ways {
            let (idx, _) = set
                .iter()
                .enumerate()
                .min_by_key(|(_, l)| l.2)
                .expect("nonempty");
            let victim = set.remove(idx);
            evicted = Some((victim.0, victim.1));
        }
        set.push((key, write, self.tick));
        (false, evicted)
    }

    fn contains(&self, key: u64) -> bool {
        self.sets
            .get(&((key % self.num_sets as u64) as usize))
            .is_some_and(|s| s.iter().any(|l| l.0 == key))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cache_matches_reference_model(accesses in prop::collection::vec((0u64..64, any::<bool>()), 1..300)) {
        // 4 sets x 2 ways.
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(4 * 2 * 64, 2, 1));
        let mut reference = RefCache::new(4, 2);
        for (key, write) in accesses {
            let got = cache.access(key, write);
            let (hit, evicted) = reference.access(key, write);
            prop_assert_eq!(got.hit, hit, "hit mismatch on {}", key);
            prop_assert_eq!(
                got.evicted.map(|e| (e.key, e.dirty)),
                evicted,
                "eviction mismatch on {}", key
            );
            prop_assert_eq!(cache.contains(key), reference.contains(key));
        }
    }

    #[test]
    fn residency_never_exceeds_capacity(accesses in prop::collection::vec(0u64..1000, 1..500)) {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(8 * 4 * 64, 4, 1));
        for key in accesses {
            cache.access(key, false);
            prop_assert!(cache.len() <= 32);
        }
    }

    #[test]
    fn flush_returns_exactly_the_dirty_set(ops in prop::collection::vec((0u64..32, any::<bool>()), 1..100)) {
        let mut cache: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(64 * 64, 64, 1));
        // Fully associative-ish (one set would need cap = ways): use
        // enough ways that nothing evicts, then flush.
        let mut dirty = std::collections::HashSet::new();
        for (key, write) in ops {
            cache.access(key, write);
            if write {
                dirty.insert(key);
            }
        }
        let mut flushed = cache.flush_all();
        flushed.sort_unstable();
        let mut expect: Vec<u64> = dirty.into_iter().collect();
        expect.sort_unstable();
        prop_assert_eq!(flushed, expect);
        prop_assert!(cache.is_empty());
    }
}
