//! Cache-hierarchy scenario tests: multi-core interactions, inclusion
//! and writeback ordering at the scale the attacks rely on.

use metaleak_sim::addr::{BlockAddr, CoreId};
use metaleak_sim::config::SimConfig;
use metaleak_sim::hierarchy::{CacheHierarchy, HitLevel};

fn hierarchy() -> CacheHierarchy {
    CacheHierarchy::new(&SimConfig::small())
}

#[test]
fn four_sharers_escalate_through_the_llc() {
    let mut h = CacheHierarchy::new(&SimConfig::default());
    let b = BlockAddr::new(42);
    h.access(CoreId(0), b, false);
    h.fill(CoreId(0), b, false);
    for core in 1..4 {
        let r = h.access(CoreId(core), b, false);
        assert_eq!(r.hit, Some(HitLevel::L3), "core {core} first touch");
        let r = h.access(CoreId(core), b, false);
        assert_eq!(r.hit, Some(HitLevel::L1), "core {core} second touch");
    }
}

#[test]
fn writer_then_reader_preserves_dirtiness() {
    let mut h = hierarchy();
    let b = BlockAddr::new(5);
    h.access(CoreId(0), b, true);
    h.fill(CoreId(0), b, true);
    // Reader on another core pulls from L3; the dirty bit must survive
    // somewhere so a flush still reports dirty.
    h.access(CoreId(1), b, false);
    assert!(h.flush_block(b), "dirtiness lost across sharers");
}

#[test]
fn private_caches_do_not_leak_across_cores() {
    let mut h = hierarchy();
    // Core 0 fills enough same-set blocks to keep them only in its L1/L2.
    let a = BlockAddr::new(10);
    h.access(CoreId(0), a, false);
    h.fill(CoreId(0), a, false);
    // Core 1's L1/L2 are empty: its first access must at best hit L3.
    let r = h.access(CoreId(1), a, false);
    assert_eq!(r.hit, Some(HitLevel::L3));
}

#[test]
fn back_invalidation_hits_all_private_copies() {
    let mut h = hierarchy();
    let victim = BlockAddr::new(0);
    // Both cores cache the victim privately.
    for core in [CoreId(0), CoreId(1)] {
        h.access(core, victim, false);
        h.fill(core, victim, false);
        h.access(core, victim, false);
    }
    // Evict it from the (8-way, 128-set) LLC with same-set fills.
    for i in 1..=8u64 {
        let b = BlockAddr::new(i * 128);
        h.access(CoreId(0), b, false);
        h.fill(CoreId(0), b, false);
    }
    assert!(!h.contains(victim), "inclusive LLC must back-invalidate everywhere");
    for core in [CoreId(0), CoreId(1)] {
        assert_eq!(h.access(core, victim, false).hit, None, "{core:?} stale copy");
    }
}

#[test]
fn llc_set_occupants_reflect_fills() {
    let mut h = hierarchy();
    for i in 0..4u64 {
        let b = BlockAddr::new(i * 128); // same LLC set
        h.access(CoreId(0), b, false);
        h.fill(CoreId(0), b, false);
    }
    let occ = h.llc_set_occupants(BlockAddr::new(0));
    assert_eq!(occ.len(), 4);
}

#[test]
fn stats_partition_hits_by_level() {
    let mut h = hierarchy();
    let b = BlockAddr::new(77);
    h.access(CoreId(0), b, false); // l1 miss, l2 miss, l3 miss
    h.fill(CoreId(0), b, false);
    h.access(CoreId(0), b, false); // l1 hit
    h.access(CoreId(1), b, false); // l3 hit
    h.access(CoreId(1), b, false); // l1 hit
    assert_eq!(h.stats.get("l1_hit"), 2);
    assert_eq!(h.stats.get("l3_hit"), 1);
    assert_eq!(h.stats.get("l3_miss"), 1);
}
