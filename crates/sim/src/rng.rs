//! Deterministic pseudo-random number generation for reproducible runs.
//!
//! Every stochastic element of the simulator (noise injection, random
//! replacement, workload generation) draws from a [`SimRng`] seeded
//! explicitly, so experiment binaries are bit-reproducible.

/// A small, fast, deterministic generator (xoshiro256** seeded via
/// SplitMix64). Not cryptographically secure — simulation use only.
///
/// ```
/// use metaleak_sim::rng::SimRng;
/// let mut a = SimRng::seed_from(42);
/// let mut b = SimRng::seed_from(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        SimRng { s }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `0..bound` (`bound` must be nonzero).
    ///
    /// # Panics
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be nonzero");
        // Lemire-style rejection for near-uniformity.
        let threshold = bound.wrapping_neg() % bound;
        loop {
            let r = self.next_u64();
            let (hi, lo) = {
                let wide = (r as u128) * (bound as u128);
                ((wide >> 64) as u64, wide as u64)
            };
            if lo >= threshold {
                return hi;
            }
        }
    }

    /// Uniform `usize` in `0..bound`.
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit_f64() < p
    }

    /// Approximately normal sample (Irwin–Hall of 12 uniforms), mean 0 sd 1.
    pub fn gaussian(&mut self) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.unit_f64();
        }
        acc - 6.0
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Derives an independent child generator for `stream_id` without
    /// advancing the parent.
    ///
    /// The child seed folds the parent's full state and the stream id
    /// through SplitMix64, so children of the same parent diverge from
    /// each other and from the parent for distinct ids, while the
    /// parent's own sequence is untouched. This is the backbone of the
    /// experiment harness's per-trial seeding: trial `i` always draws
    /// from `root.split(i)` regardless of which worker thread runs it,
    /// keeping parallel sweeps bit-reproducible.
    ///
    /// ```
    /// use metaleak_sim::rng::SimRng;
    /// let root = SimRng::seed_from(42);
    /// let mut a = root.split(0);
    /// let mut b = root.split(1);
    /// assert_ne!(a.next_u64(), b.next_u64());
    /// ```
    pub fn split(&self, stream_id: u64) -> SimRng {
        let mut sm = stream_id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        for &w in &self.s {
            sm = splitmix64(&mut sm) ^ w;
        }
        SimRng::seed_from(splitmix64(&mut sm))
    }

    /// Fills a byte buffer with random data.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        for chunk in buf.chunks_mut(8) {
            let r = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&r[..chunk.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::seed_from(7);
        let mut b = SimRng::seed_from(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seed_from(1);
        let mut b = SimRng::seed_from(2);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::seed_from(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
    }

    #[test]
    fn unit_f64_in_range_and_roughly_uniform() {
        let mut r = SimRng::seed_from(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.unit_f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn gaussian_has_sane_moments() {
        let mut r = SimRng::seed_from(11);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = SimRng::seed_from(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_fills_every_byte_position() {
        let mut r = SimRng::seed_from(13);
        let mut buf = [0u8; 33];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn below_zero_bound_panics() {
        SimRng::seed_from(0).below(0);
    }

    #[test]
    fn split_is_deterministic() {
        let a = SimRng::seed_from(7).split(3);
        let b = SimRng::seed_from(7).split(3);
        assert_eq!(
            (0..16).scan(a, |r, _| Some(r.next_u64())).collect::<Vec<_>>(),
            (0..16).scan(b, |r, _| Some(r.next_u64())).collect::<Vec<_>>()
        );
    }

    #[test]
    fn split_children_diverge_from_each_other_and_parent() {
        let root = SimRng::seed_from(99);
        let draw = |mut r: SimRng| (0..8).map(|_| r.next_u64()).collect::<Vec<_>>();
        let parent_stream = draw(root.clone());
        let c0 = draw(root.split(0));
        let c1 = draw(root.split(1));
        assert_ne!(c0, c1, "sibling streams must diverge");
        assert_ne!(c0, parent_stream, "child must not replay the parent");
        assert_ne!(c1, parent_stream, "child must not replay the parent");
    }

    #[test]
    fn split_leaves_parent_unaffected() {
        let mut with_split = SimRng::seed_from(5);
        let mut without = SimRng::seed_from(5);
        let _child = with_split.split(17);
        for _ in 0..32 {
            assert_eq!(with_split.next_u64(), without.next_u64());
        }
    }

    #[test]
    fn split_differs_across_parent_seeds() {
        let mut a = SimRng::seed_from(1).split(0);
        let mut b = SimRng::seed_from(2).split(0);
        assert_ne!(
            (0..8).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..8).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }
}
