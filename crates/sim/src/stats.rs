//! Counters and latency histograms for experiment reporting.

use crate::clock::Cycles;
use std::collections::BTreeMap;
use std::fmt;

/// A named event counter set.
///
/// Counters are bumped several times per simulated memory access, so
/// storage is a flat `Vec` scanned linearly: the live key population is
/// a dozen-odd interned `&'static str` literals, and the scan resolves
/// almost every probe with a pointer-identity compare (same literal →
/// same address) before falling back to a content compare. This beats
/// both the original `String`-keyed map (allocation per bump) and the
/// intermediate `BTreeMap` (string-compare tree descent per bump).
///
/// ```
/// use metaleak_sim::stats::Counters;
/// let mut c = Counters::new();
/// c.bump("read_hits");
/// c.add("read_hits", 2);
/// assert_eq!(c.get("read_hits"), 3);
/// assert_eq!(c.get("missing"), 0);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Counters {
    entries: Vec<(&'static str, u64)>,
}

impl Counters {
    /// Creates an empty counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments `key` by one.
    pub fn bump(&mut self, key: &'static str) {
        self.add(key, 1);
    }

    /// Increments `key` by `n`.
    pub fn add(&mut self, key: &'static str, n: u64) {
        // Pointer identity first (cheap, hits for repeated literals);
        // content equality as the correctness backstop so two distinct
        // literals with equal text still share one entry.
        for (k, v) in &mut self.entries {
            if std::ptr::eq(*k, key) || *k == key {
                *v += n;
                return;
            }
        }
        self.entries.push((key, n));
    }

    /// Current value of `key` (0 if never bumped).
    pub fn get(&self, key: &str) -> u64 {
        self.entries.iter().find(|(k, _)| *k == key).map(|&(_, v)| v).unwrap_or(0)
    }

    /// Iterates over `(name, count)` pairs in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, u64)> {
        let mut sorted = self.entries.clone();
        sorted.sort_unstable_by_key(|&(k, _)| k);
        sorted.into_iter()
    }

    /// Adds every count in `other` into `self`. Merging is
    /// order-independent, so aggregating a warmup segment with a
    /// per-trial segment reproduces one continuous run's counts.
    pub fn merge(&mut self, other: &Counters) {
        for &(k, v) in &other.entries {
            self.add(k, v);
        }
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        self.entries.clear();
    }
}

impl fmt::Display for Counters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (k, v) in self.iter() {
            writeln!(f, "{k:32} {v}")?;
        }
        Ok(())
    }
}

/// Error returned by [`LatencyHistogram::try_merge`] when two
/// histograms cannot be combined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeError {
    /// The two histograms use different bucket widths, so their bucket
    /// boundaries do not line up and a merge would silently misbin.
    BucketWidthMismatch {
        /// Bucket width of the destination histogram.
        ours: u64,
        /// Bucket width of the histogram being merged in.
        theirs: u64,
    },
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::BucketWidthMismatch { ours, theirs } => write!(
                f,
                "bucket widths must match to merge (ours = {ours} cycles, theirs = {theirs})"
            ),
        }
    }
}

impl std::error::Error for MergeError {}

/// A latency histogram with fixed-width buckets, used to render the
/// latency-distribution figures (Figures 6–8 of the paper).
///
/// # Examples
/// ```
/// use metaleak_sim::clock::Cycles;
/// use metaleak_sim::stats::LatencyHistogram;
///
/// let mut h = LatencyHistogram::new(10);
/// for v in [5, 15, 15, 95] {
///     h.record(Cycles::new(v));
/// }
/// assert_eq!(h.count(), 4);
/// assert_eq!(h.percentile(0.5).unwrap().as_u64(), 10);
/// assert!((h.mass_between(10, 20) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct LatencyHistogram {
    bucket_width: u64,
    buckets: BTreeMap<u64, u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl LatencyHistogram {
    /// Creates a histogram with the given bucket width in cycles.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn new(bucket_width: u64) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        LatencyHistogram {
            bucket_width,
            buckets: BTreeMap::new(),
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, lat: Cycles) {
        let v = lat.as_u64();
        let b = v / self.bucket_width * self.bucket_width;
        *self.buckets.entry(b).or_insert(0) += 1;
        self.count += 1;
        self.sum += v;
        self.min = self.min.min(v);
        self.max = self.max.max(v);
    }

    /// Reconstructs a histogram from its exact internal state, as
    /// produced by [`Self::parts`]. Used by the bench journal to
    /// round-trip histograms through crash-safe checkpoints without
    /// losing a single sample.
    ///
    /// # Panics
    /// Panics if `bucket_width` is zero.
    pub fn from_parts(
        bucket_width: u64,
        buckets: impl IntoIterator<Item = (u64, u64)>,
        sum: u64,
        min: u64,
        max: u64,
    ) -> Self {
        assert!(bucket_width > 0, "bucket width must be nonzero");
        let buckets: BTreeMap<u64, u64> = buckets.into_iter().collect();
        let count = buckets.values().sum();
        LatencyHistogram { bucket_width, buckets, count, sum, min, max }
    }

    /// Exact internal state `(bucket_width, buckets, sum, min, max)`
    /// for serialization; inverse of [`Self::from_parts`]. The raw
    /// `min`/`max` sentinels of an empty histogram (`u64::MAX`/`0`) are
    /// exposed as-is so the round-trip is the identity.
    pub fn parts(&self) -> (u64, Vec<(u64, u64)>, u64, u64, u64) {
        (self.bucket_width, self.iter().collect(), self.sum, self.min, self.max)
    }

    /// Bucket width in cycles.
    pub fn bucket_width(&self) -> u64 {
        self.bucket_width
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or `None` if empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum as f64 / self.count as f64)
    }

    /// Minimum recorded latency, or `None` if empty.
    pub fn min(&self) -> Option<Cycles> {
        (self.count > 0).then(|| Cycles::new(self.min))
    }

    /// Maximum recorded latency, or `None` if empty.
    pub fn max(&self) -> Option<Cycles> {
        (self.count > 0).then(|| Cycles::new(self.max))
    }

    /// Approximate p-th percentile (0.0..=1.0) from the bucketed data.
    pub fn percentile(&self, p: f64) -> Option<Cycles> {
        if self.count == 0 {
            return None;
        }
        let target = ((self.count as f64) * p.clamp(0.0, 1.0)).ceil() as u64;
        let mut seen = 0;
        for (&start, &n) in &self.buckets {
            seen += n;
            if seen >= target {
                return Some(Cycles::new(start));
            }
        }
        self.buckets.keys().next_back().map(|&b| Cycles::new(b))
    }

    /// Iterates over `(bucket_start_cycles, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.buckets.iter().map(|(&b, &n)| (b, n))
    }

    /// Empirical CDF at bucket granularity: `(bucket_start, F)` pairs
    /// where `F` is the fraction of samples in buckets starting at or
    /// below `bucket_start`. The last pair always carries `F == 1.0`;
    /// an empty histogram yields an empty vector.
    pub fn cdf(&self) -> Vec<(u64, f64)> {
        if self.count == 0 {
            return Vec::new();
        }
        let mut acc = 0u64;
        self.buckets
            .iter()
            .map(|(&b, &n)| {
                acc += n;
                (b, acc as f64 / self.count as f64)
            })
            .collect()
    }

    /// CDF value at `x` cycles: the fraction of samples whose bucket
    /// starts at or below `x` (bucket-granular, right-continuous).
    /// Returns 0.0 for an empty histogram.
    pub fn cdf_at(&self, x: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let below: u64 = self.buckets.range(..=x).map(|(_, &n)| n).sum();
        below as f64 / self.count as f64
    }

    /// Two-sample Kolmogorov–Smirnov distance `sup_x |F_a(x) - F_b(x)|`
    /// between this histogram and `other`, evaluated bucket-granularly
    /// at the union of both bucket boundaries (exact for the bucketed
    /// distributions, an approximation of the raw-sample statistic).
    /// Either histogram being empty yields 0.0 against another empty
    /// one and 1.0 against a non-empty one.
    pub fn ks_distance(&self, other: &LatencyHistogram) -> f64 {
        match (self.count, other.count) {
            (0, 0) => return 0.0,
            (0, _) | (_, 0) => return 1.0,
            _ => {}
        }
        let mut boundaries: Vec<u64> =
            self.buckets.keys().chain(other.buckets.keys()).copied().collect();
        boundaries.sort_unstable();
        boundaries.dedup();
        boundaries.into_iter().map(|x| (self.cdf_at(x) - other.cdf_at(x)).abs()).fold(0.0, f64::max)
    }

    /// Merges another histogram's samples into this one. Used by the
    /// parallel experiment harness to combine per-trial histograms into
    /// the figure-level distribution; merge order does not affect the
    /// result.
    ///
    /// # Panics
    /// Panics if the bucket widths differ. Use [`Self::try_merge`] to
    /// handle the mismatch instead of aborting.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        self.try_merge(other).expect("bucket widths must match to merge");
    }

    /// Fallible variant of [`Self::merge`]: refuses (without modifying
    /// `self`) to combine histograms whose bucket widths differ, since
    /// their bucket boundaries would misbin every sample.
    ///
    /// # Examples
    /// ```
    /// use metaleak_sim::clock::Cycles;
    /// use metaleak_sim::stats::{LatencyHistogram, MergeError};
    ///
    /// let mut a = LatencyHistogram::new(10);
    /// let mut b = LatencyHistogram::new(10);
    /// b.record(Cycles::new(25));
    /// assert!(a.try_merge(&b).is_ok());
    /// assert_eq!(a.count(), 1);
    ///
    /// let coarse = LatencyHistogram::new(20);
    /// let err = a.try_merge(&coarse).unwrap_err();
    /// assert_eq!(err, MergeError::BucketWidthMismatch { ours: 10, theirs: 20 });
    /// assert_eq!(a.count(), 1); // untouched on error
    /// ```
    pub fn try_merge(&mut self, other: &LatencyHistogram) -> Result<(), MergeError> {
        if self.bucket_width != other.bucket_width {
            return Err(MergeError::BucketWidthMismatch {
                ours: self.bucket_width,
                theirs: other.bucket_width,
            });
        }
        for (&b, &n) in &other.buckets {
            *self.buckets.entry(b).or_insert(0) += n;
        }
        self.count += other.count;
        self.sum += other.sum;
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
        Ok(())
    }

    /// Fraction of samples in `[lo, hi)` cycles (bucket-granular).
    pub fn mass_between(&self, lo: u64, hi: u64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let in_range: u64 =
            self.buckets.iter().filter(|(&b, _)| b >= lo && b < hi).map(|(_, &n)| n).sum();
        in_range as f64 / self.count as f64
    }

    /// Renders a textual histogram (one row per non-empty bucket).
    pub fn render(&self, max_width: usize) -> String {
        let peak = self.buckets.values().copied().max().unwrap_or(1).max(1);
        let mut out = String::new();
        for (&b, &n) in &self.buckets {
            let bar = "#".repeat(((n as usize) * max_width / peak as usize).max(1));
            out.push_str(&format!("{:>6}-{:<6} {:>7} {}\n", b, b + self.bucket_width, n, bar));
        }
        out
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut c = Counters::new();
        c.bump("x");
        c.add("x", 4);
        c.bump("y");
        assert_eq!(c.get("x"), 5);
        assert_eq!(c.get("y"), 1);
        assert_eq!(c.iter().count(), 2);
        c.reset();
        assert_eq!(c.get("x"), 0);
    }

    #[test]
    fn histogram_statistics() {
        let mut h = LatencyHistogram::new(10);
        for v in [5u64, 15, 15, 25, 95] {
            h.record(Cycles::new(v));
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.min().unwrap().as_u64(), 5);
        assert_eq!(h.max().unwrap().as_u64(), 95);
        assert!((h.mean().unwrap() - 31.0).abs() < 1e-9);
        // bucket [10,20) holds 2/5 of the mass
        assert!((h.mass_between(10, 20) - 0.4).abs() < 1e-9);
        assert_eq!(h.percentile(0.5).unwrap().as_u64(), 10);
        assert!(h.render(20).contains('#'));
    }

    /// Micro-test for the allocation-free key change: the interned-key
    /// API behaves exactly like the old `String`-keyed map — repeated
    /// adds accumulate into one entry, unknown keys read 0, and `get`
    /// still accepts dynamically built strings.
    #[test]
    fn counters_interned_keys_behave_like_owned_keys() {
        let mut c = Counters::new();
        for _ in 0..1000 {
            c.bump("hot_path_key");
        }
        c.add("hot_path_key", 5);
        assert_eq!(c.get("hot_path_key"), 1005);
        assert_eq!(c.iter().count(), 1, "repeated bumps must not duplicate entries");
        let dynamic = String::from("hot_") + "path_key";
        assert_eq!(c.get(&dynamic), 1005, "lookup by non-static str must still work");
        assert_eq!(c.iter().next(), Some(("hot_path_key", 1005)));
        let rendered = format!("{c}");
        assert!(rendered.starts_with("hot_path_key"));
        assert!(rendered.trim_end().ends_with("1005"));
    }

    #[test]
    fn histogram_merge_combines_summaries() {
        let mut a = LatencyHistogram::new(10);
        let mut b = LatencyHistogram::new(10);
        let mut whole = LatencyHistogram::new(10);
        for v in [5u64, 15, 15] {
            a.record(Cycles::new(v));
            whole.record(Cycles::new(v));
        }
        for v in [25u64, 95] {
            b.record(Cycles::new(v));
            whole.record(Cycles::new(v));
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        assert_eq!(a.min(), whole.min());
        assert_eq!(a.max(), whole.max());
        assert_eq!(a.mean(), whole.mean());
        assert_eq!(a.iter().collect::<Vec<_>>(), whole.iter().collect::<Vec<_>>());
        // Merging an empty histogram is a no-op.
        a.merge(&LatencyHistogram::new(10));
        assert_eq!(a.count(), 5);
        assert_eq!(a.min().unwrap().as_u64(), 5);
    }

    #[test]
    #[should_panic(expected = "bucket widths")]
    fn histogram_merge_rejects_mismatched_widths() {
        let mut a = LatencyHistogram::new(10);
        a.merge(&LatencyHistogram::new(20));
    }

    #[test]
    fn histogram_try_merge_reports_widths_and_leaves_dest_untouched() {
        let mut a = LatencyHistogram::new(10);
        a.record(Cycles::new(15));
        let mut b = LatencyHistogram::new(25);
        b.record(Cycles::new(30));
        let err = a.try_merge(&b).unwrap_err();
        assert_eq!(err, MergeError::BucketWidthMismatch { ours: 10, theirs: 25 });
        let msg = err.to_string();
        assert!(msg.contains("ours = 10") && msg.contains("theirs = 25"), "message: {msg}");
        // Destination must be untouched after a refused merge.
        assert_eq!(a.count(), 1);
        assert_eq!(a.iter().collect::<Vec<_>>(), vec![(10, 1)]);
    }

    #[test]
    fn histogram_try_merge_matches_merge_on_equal_widths() {
        let mut a = LatencyHistogram::new(10);
        let mut b = LatencyHistogram::new(10);
        a.record(Cycles::new(5));
        b.record(Cycles::new(95));
        assert_eq!(a.try_merge(&b), Ok(()));
        assert_eq!(a.count(), 2);
        assert_eq!(a.max().unwrap().as_u64(), 95);
    }

    #[test]
    fn empty_histogram_is_well_behaved() {
        let h = LatencyHistogram::new(10);
        assert_eq!(h.count(), 0);
        assert!(h.mean().is_none());
        assert!(h.min().is_none());
        assert!(h.percentile(0.5).is_none());
        assert_eq!(h.mass_between(0, 100), 0.0);
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_bucket_width_panics() {
        let _ = LatencyHistogram::new(0);
    }

    #[test]
    fn parts_round_trip_is_identity() {
        let mut h = LatencyHistogram::new(10);
        for v in [5u64, 15, 15, 25, 95] {
            h.record(Cycles::new(v));
        }
        let (w, buckets, sum, min, max) = h.parts();
        let back = LatencyHistogram::from_parts(w, buckets, sum, min, max);
        assert_eq!(back.bucket_width(), h.bucket_width());
        assert_eq!(back.count(), h.count());
        assert_eq!(back.mean(), h.mean());
        assert_eq!(back.min(), h.min());
        assert_eq!(back.max(), h.max());
        assert_eq!(back.iter().collect::<Vec<_>>(), h.iter().collect::<Vec<_>>());

        // Empty histograms keep their raw sentinels through the trip.
        let empty = LatencyHistogram::new(7);
        let (w, buckets, sum, min, max) = empty.parts();
        assert_eq!((sum, min, max), (0, u64::MAX, 0));
        let back = LatencyHistogram::from_parts(w, buckets, sum, min, max);
        assert_eq!(back.count(), 0);
        assert!(back.min().is_none());
    }

    #[test]
    fn cdf_is_monotone_and_ends_at_one() {
        let mut h = LatencyHistogram::new(10);
        for v in [5u64, 15, 15, 25, 95] {
            h.record(Cycles::new(v));
        }
        let cdf = h.cdf();
        assert_eq!(cdf.len(), 4); // buckets 0, 10, 20, 90
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1));
        assert_eq!(cdf.last().unwrap().1, 1.0);
        assert!((h.cdf_at(10) - 0.6).abs() < 1e-12); // 3 of 5 samples at or below bucket 10
        assert_eq!(h.cdf_at(0), 0.2);
        assert_eq!(h.cdf_at(1_000_000), 1.0);
    }

    #[test]
    fn cdf_edge_cases_empty_and_single_bucket() {
        let empty = LatencyHistogram::new(10);
        assert!(empty.cdf().is_empty());
        assert_eq!(empty.cdf_at(50), 0.0);

        let mut single = LatencyHistogram::new(10);
        single.record(Cycles::new(42));
        single.record(Cycles::new(44));
        assert_eq!(single.cdf(), vec![(40, 1.0)]);
        assert_eq!(single.cdf_at(39), 0.0);
        assert_eq!(single.cdf_at(40), 1.0);
    }

    #[test]
    fn ks_distance_separates_shifted_distributions() {
        let mut a = LatencyHistogram::new(10);
        let mut b = LatencyHistogram::new(10);
        for v in [5u64, 15, 25, 35] {
            a.record(Cycles::new(v));
            b.record(Cycles::new(v + 200)); // fully disjoint support
        }
        assert_eq!(a.ks_distance(&b), 1.0);
        assert_eq!(a.ks_distance(&a.clone()), 0.0);
        // Symmetric.
        assert_eq!(a.ks_distance(&b), b.ks_distance(&a));
    }

    #[test]
    fn ks_distance_partial_overlap() {
        let mut a = LatencyHistogram::new(10);
        let mut b = LatencyHistogram::new(10);
        // a: half at bucket 0, half at bucket 100; b: all at bucket 100.
        a.record(Cycles::new(1));
        a.record(Cycles::new(100));
        b.record(Cycles::new(105));
        b.record(Cycles::new(101));
        assert!((a.ks_distance(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn ks_distance_edge_cases_empty_and_single_bucket() {
        let empty = LatencyHistogram::new(10);
        assert_eq!(empty.ks_distance(&LatencyHistogram::new(10)), 0.0);
        let mut one = LatencyHistogram::new(10);
        one.record(Cycles::new(7));
        assert_eq!(empty.ks_distance(&one), 1.0);
        assert_eq!(one.ks_distance(&empty), 1.0);
        // Two single-bucket histograms over the same bucket: identical.
        let mut same = LatencyHistogram::new(10);
        same.record(Cycles::new(3));
        assert_eq!(one.ks_distance(&same), 0.0);
    }
}
