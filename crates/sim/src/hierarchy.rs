//! Three-level data cache hierarchy (private L1/L2, shared L3).

use crate::addr::{BlockAddr, CoreId};
use crate::cache::SetAssocCache;
use crate::clock::Cycles;
use crate::config::SimConfig;
use crate::stats::Counters;
use crate::trace::{NullTracer, TraceEvent, Tracer};

/// The cache level at which a data access hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum HitLevel {
    /// Private level-1 data cache.
    L1,
    /// Private level-2 cache.
    L2,
    /// Shared last-level cache.
    L3,
}

/// Result of a hierarchy access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyAccess {
    /// Where the access hit; `None` means it missed everywhere and must
    /// be serviced by the memory controller.
    pub hit: Option<HitLevel>,
    /// Latency accumulated walking the hierarchy (lookup costs only; the
    /// memory latency on a full miss is added by the caller).
    pub latency: Cycles,
    /// Dirty blocks evicted from the LLC by fills performed during this
    /// access; these become memory writebacks.
    pub writebacks: Vec<BlockAddr>,
}

/// Private L1/L2 per core plus a shared L3, with inclusive fills.
#[derive(Debug, Clone)]
pub struct CacheHierarchy {
    l1: Vec<SetAssocCache<BlockAddr>>,
    l2: Vec<SetAssocCache<BlockAddr>>,
    l3: SetAssocCache<BlockAddr>,
    l1_lat: Cycles,
    l2_lat: Cycles,
    l3_lat: Cycles,
    /// Event counters (hits/misses per level).
    pub stats: Counters,
}

impl CacheHierarchy {
    /// Builds the hierarchy described by `config`.
    pub fn new(config: &SimConfig) -> Self {
        CacheHierarchy {
            l1: (0..config.cores).map(|_| SetAssocCache::new(config.l1)).collect(),
            l2: (0..config.cores).map(|_| SetAssocCache::new(config.l2)).collect(),
            l3: SetAssocCache::new(config.l3),
            l1_lat: config.l1.hit_latency,
            l2_lat: config.l2.hit_latency,
            l3_lat: config.l3.hit_latency,
            stats: Counters::new(),
        }
    }

    /// Number of cores this hierarchy serves.
    pub fn cores(&self) -> usize {
        self.l1.len()
    }

    /// Forces every cache level fully private (see
    /// [`SetAssocCache::unshare`]).
    pub fn unshare(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()) {
            c.unshare();
        }
        self.l3.unshare();
    }

    /// Performs a load/store lookup from `core`. On a miss at all levels
    /// the caller must fetch the block from memory and then call
    /// [`CacheHierarchy::fill`].
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    pub fn access(&mut self, core: CoreId, block: BlockAddr, write: bool) -> HierarchyAccess {
        self.access_traced(core, block, write, Cycles::new(0), &mut NullTracer)
    }

    /// [`CacheHierarchy::access`] with instrumentation: emits one
    /// [`TraceEvent::CacheLookup`] (with set index and per-level lookup
    /// latency) for every level consulted, timestamped `now`. The
    /// emitted lookup cycles sum exactly to the returned latency.
    pub fn access_traced<T: Tracer>(
        &mut self,
        core: CoreId,
        block: BlockAddr,
        write: bool,
        now: Cycles,
        tracer: &mut T,
    ) -> HierarchyAccess {
        let c = core.0;
        assert!(c < self.l1.len(), "core {c} out of range");
        let mut latency = self.l1_lat;
        let l1_hit = self.l1[c].access(block, write).hit;
        if T::ENABLED {
            tracer.record(
                now,
                TraceEvent::CacheLookup {
                    level: 1,
                    hit: l1_hit,
                    set: self.l1[c].set_index(block) as u32,
                    cycles: self.l1_lat.as_u64(),
                },
            );
        }
        if l1_hit {
            self.stats.bump("l1_hit");
            return HierarchyAccess { hit: Some(HitLevel::L1), latency, writebacks: Vec::new() };
        }
        self.stats.bump("l1_miss");
        latency += self.l2_lat;
        let l2_hit = self.l2[c].touch(block);
        if T::ENABLED {
            tracer.record(
                now,
                TraceEvent::CacheLookup {
                    level: 2,
                    hit: l2_hit,
                    set: self.l2[c].set_index(block) as u32,
                    cycles: self.l2_lat.as_u64(),
                },
            );
        }
        if l2_hit {
            self.stats.bump("l2_hit");
            // Fill into L1 on an L2 hit.
            self.l1[c].access(block, write);
            if write {
                self.l2[c].mark_dirty(block);
            }
            return HierarchyAccess { hit: Some(HitLevel::L2), latency, writebacks: Vec::new() };
        }
        self.stats.bump("l2_miss");
        latency += self.l3_lat;
        let l3_hit = self.l3.touch(block);
        if T::ENABLED {
            tracer.record(
                now,
                TraceEvent::CacheLookup {
                    level: 3,
                    hit: l3_hit,
                    set: self.l3.set_index(block) as u32,
                    cycles: self.l3_lat.as_u64(),
                },
            );
        }
        if l3_hit {
            self.stats.bump("l3_hit");
            self.l1[c].access(block, write);
            self.l2[c].access(block, write);
            if write {
                self.l3.mark_dirty(block);
            }
            return HierarchyAccess { hit: Some(HitLevel::L3), latency, writebacks: Vec::new() };
        }
        self.stats.bump("l3_miss");
        HierarchyAccess { hit: None, latency, writebacks: Vec::new() }
    }

    /// Installs a block fetched from memory into all levels for `core`,
    /// returning any dirty LLC victims that must be written back.
    pub fn fill(&mut self, core: CoreId, block: BlockAddr, write: bool) -> Vec<BlockAddr> {
        let c = core.0;
        let mut writebacks = Vec::new();
        if let Some(ev) = self.l3.access(block, write).evicted {
            if ev.dirty {
                writebacks.push(ev.key);
            }
            // Inclusive LLC: back-invalidate private copies of the victim.
            for l1 in &mut self.l1 {
                l1.invalidate(ev.key);
            }
            for l2 in &mut self.l2 {
                if let Some(true) = l2.invalidate(ev.key) {
                    if !writebacks.contains(&ev.key) {
                        writebacks.push(ev.key);
                    }
                }
            }
        }
        self.l2[c].access(block, write);
        self.l1[c].access(block, write);
        writebacks
    }

    /// Evicts `block` from every level (like `clflush`); returns true if
    /// any copy was dirty.
    pub fn flush_block(&mut self, block: BlockAddr) -> bool {
        let mut dirty = false;
        for l1 in &mut self.l1 {
            dirty |= l1.invalidate(block).unwrap_or(false);
        }
        for l2 in &mut self.l2 {
            dirty |= l2.invalidate(block).unwrap_or(false);
        }
        dirty |= self.l3.invalidate(block).unwrap_or(false);
        dirty
    }

    /// Whether `block` is resident anywhere in the hierarchy.
    pub fn contains(&self, block: BlockAddr) -> bool {
        self.l3.contains(block)
            || self.l1.iter().any(|c| c.contains(block))
            || self.l2.iter().any(|c| c.contains(block))
    }

    /// Shared-LLC set occupants of the set `block` maps to (test helper
    /// and attack primitive for occupancy probing).
    pub fn llc_set_occupants(&self, block: BlockAddr) -> Vec<BlockAddr> {
        self.l3.set_occupants(block)
    }

    /// Hit latency of the named level.
    pub fn level_latency(&self, level: HitLevel) -> Cycles {
        match level {
            HitLevel::L1 => self.l1_lat,
            HitLevel::L2 => self.l1_lat + self.l2_lat,
            HitLevel::L3 => self.l1_lat + self.l2_lat + self.l3_lat,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::CoreId;

    fn hierarchy() -> CacheHierarchy {
        CacheHierarchy::new(&SimConfig::small())
    }

    #[test]
    fn cold_access_misses_everywhere() {
        let mut h = hierarchy();
        let b = BlockAddr::new(100);
        let r = h.access(CoreId(0), b, false);
        assert_eq!(r.hit, None);
        assert_eq!(r.latency.as_u64(), 1 + 10 + 40);
    }

    #[test]
    fn fill_then_l1_hit() {
        let mut h = hierarchy();
        let b = BlockAddr::new(100);
        assert!(h.access(CoreId(0), b, false).hit.is_none());
        h.fill(CoreId(0), b, false);
        let r = h.access(CoreId(0), b, false);
        assert_eq!(r.hit, Some(HitLevel::L1));
        assert_eq!(r.latency.as_u64(), 1);
    }

    #[test]
    fn cross_core_hit_comes_from_l3() {
        let mut h = hierarchy();
        let b = BlockAddr::new(7);
        h.access(CoreId(0), b, false);
        h.fill(CoreId(0), b, false);
        let r = h.access(CoreId(1), b, false);
        assert_eq!(r.hit, Some(HitLevel::L3));
    }

    #[test]
    fn flush_removes_all_copies() {
        let mut h = hierarchy();
        let b = BlockAddr::new(9);
        h.access(CoreId(0), b, true);
        h.fill(CoreId(0), b, true);
        assert!(h.contains(b));
        assert!(h.flush_block(b), "dirty flush must report dirty");
        assert!(!h.contains(b));
        assert_eq!(h.access(CoreId(0), b, false).hit, None);
    }

    #[test]
    fn llc_eviction_produces_writeback_and_back_invalidate() {
        let mut h = hierarchy();
        // Fill the small LLC (64 KiB / 64 B = 1024 blocks, 8 ways x 128 sets).
        // Use blocks all mapping to the same LLC set: stride = 128 blocks.
        let victim = BlockAddr::new(0);
        h.access(CoreId(0), victim, true);
        h.fill(CoreId(0), victim, true);
        let mut wbs = Vec::new();
        for i in 1..=8u64 {
            let b = BlockAddr::new(i * 128);
            h.access(CoreId(0), b, false);
            wbs.extend(h.fill(CoreId(0), b, false));
        }
        assert!(wbs.contains(&victim), "dirty victim must be written back");
        assert!(!h.contains(victim), "inclusive LLC must back-invalidate");
    }

    #[test]
    fn write_marks_dirty_through_levels() {
        let mut h = hierarchy();
        let b = BlockAddr::new(3);
        h.access(CoreId(0), b, false);
        h.fill(CoreId(0), b, false);
        // L1 hit write.
        h.access(CoreId(0), b, true);
        assert!(h.flush_block(b), "written block must flush dirty");
    }

    #[test]
    fn level_latencies_are_cumulative() {
        let h = hierarchy();
        assert_eq!(h.level_latency(HitLevel::L1).as_u64(), 1);
        assert_eq!(h.level_latency(HitLevel::L2).as_u64(), 11);
        assert_eq!(h.level_latency(HitLevel::L3).as_u64(), 51);
    }

    #[test]
    fn stats_count_hits_and_misses() {
        let mut h = hierarchy();
        let b = BlockAddr::new(5);
        h.access(CoreId(0), b, false);
        h.fill(CoreId(0), b, false);
        h.access(CoreId(0), b, false);
        assert_eq!(h.stats.get("l3_miss"), 1);
        assert_eq!(h.stats.get("l1_hit"), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn bad_core_panics() {
        let mut h = hierarchy();
        h.access(CoreId(99), BlockAddr::new(0), false);
    }

    #[test]
    fn traced_access_lookup_cycles_partition_latency() {
        use crate::trace::{RingTracer, TraceEvent};
        let mut h = hierarchy();
        let mut t = RingTracer::new(64);
        let b = BlockAddr::new(100);
        let r = h.access_traced(CoreId(0), b, false, Cycles::new(0), &mut t);
        assert_eq!(r.hit, None);
        let log = t.into_log();
        assert_eq!(log.events.len(), 3, "one lookup per level on a full miss");
        let total: u64 = log
            .events
            .iter()
            .map(|rec| match rec.event {
                TraceEvent::CacheLookup { cycles, hit, .. } => {
                    assert!(!hit);
                    cycles
                }
                other => panic!("unexpected event {other:?}"),
            })
            .sum();
        assert_eq!(total, r.latency.as_u64());
    }
}
