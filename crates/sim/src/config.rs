//! Simulator configuration (Table I of the paper).

use crate::clock::Cycles;

/// Geometry and hit latency of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub capacity_bytes: usize,
    /// Associativity (ways per set).
    pub ways: usize,
    /// Hit latency.
    pub hit_latency: Cycles,
}

impl CacheConfig {
    /// Creates a config; `capacity_bytes` must be a multiple of
    /// `ways * 64` so sets divide evenly.
    pub const fn new(capacity_bytes: usize, ways: usize, hit_latency: u64) -> Self {
        CacheConfig { capacity_bytes, ways, hit_latency: Cycles::new(hit_latency) }
    }

    /// Number of sets for 64-byte blocks.
    pub const fn sets(&self) -> usize {
        self.capacity_bytes / (self.ways * crate::addr::BLOCK_SIZE)
    }
}

/// DRAM timing and geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramConfig {
    /// Number of channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Banks per rank.
    pub banks: usize,
    /// Latency of a row-buffer hit (CAS + bus), in cycles.
    pub row_hit: Cycles,
    /// Latency when the bank row buffer is closed (ACT + CAS + bus).
    pub row_closed: Cycles,
    /// Latency when a different row is open (PRE + ACT + CAS + bus).
    pub row_conflict: Cycles,
}

impl Default for DramConfig {
    fn default() -> Self {
        // 64 GB, dual channel, 2 ranks/channel (Table I), 8 banks/rank,
        // open-row policy. Latencies in CPU cycles.
        DramConfig {
            channels: 2,
            ranks: 2,
            banks: 8,
            row_hit: Cycles::new(40),
            row_closed: Cycles::new(75),
            row_conflict: Cycles::new(110),
        }
    }
}

/// Memory-controller queueing parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemCtlConfig {
    /// Read queue depth (entries).
    pub read_queue: usize,
    /// Write queue depth (entries).
    pub write_queue: usize,
    /// High watermark at which the write queue starts draining.
    pub write_drain_watermark: usize,
    /// Per-queued-request scheduling penalty applied to reads.
    pub queue_penalty: Cycles,
}

impl Default for MemCtlConfig {
    fn default() -> Self {
        MemCtlConfig {
            read_queue: 64,
            write_queue: 64,
            write_drain_watermark: 48,
            queue_penalty: Cycles::new(4),
        }
    }
}

/// Full memory-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimConfig {
    /// Number of cores.
    pub cores: usize,
    /// Private L1 data cache.
    pub l1: CacheConfig,
    /// Private L2 cache.
    pub l2: CacheConfig,
    /// Shared L3 (LLC).
    pub l3: CacheConfig,
    /// DRAM model.
    pub dram: DramConfig,
    /// Memory controller queues.
    pub memctl: MemCtlConfig,
    /// Standard deviation of injected Gaussian timing noise, in cycles
    /// (0 disables noise).
    pub noise_sd: f64,
}

impl Default for SimConfig {
    fn default() -> Self {
        // Table I, "Simulated architecture configuration".
        SimConfig {
            cores: 4,
            l1: CacheConfig::new(32 * 1024, 8, 1),
            l2: CacheConfig::new(1024 * 1024, 4, 10),
            l3: CacheConfig::new(8 * 1024 * 1024, 16, 40),
            dram: DramConfig::default(),
            memctl: MemCtlConfig::default(),
            noise_sd: 2.0,
        }
    }
}

impl SimConfig {
    /// A smaller configuration for fast unit tests.
    pub fn small() -> Self {
        SimConfig {
            cores: 2,
            l1: CacheConfig::new(4 * 1024, 4, 1),
            l2: CacheConfig::new(16 * 1024, 4, 10),
            l3: CacheConfig::new(64 * 1024, 8, 40),
            dram: DramConfig::default(),
            memctl: MemCtlConfig::default(),
            noise_sd: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_defaults() {
        let c = SimConfig::default();
        assert_eq!(c.cores, 4);
        assert_eq!(c.l1.capacity_bytes, 32 * 1024);
        assert_eq!(c.l1.ways, 8);
        assert_eq!(c.l2.ways, 4);
        assert_eq!(c.l3.capacity_bytes, 8 * 1024 * 1024);
        assert_eq!(c.l3.ways, 16);
        assert_eq!(c.dram.channels, 2);
        assert_eq!(c.memctl.read_queue, 64);
        assert_eq!(c.memctl.write_queue, 64);
    }

    #[test]
    fn set_counts() {
        let c = SimConfig::default();
        assert_eq!(c.l1.sets(), 64);
        assert_eq!(c.l3.sets(), 8192);
    }
}
