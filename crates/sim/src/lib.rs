//! # metaleak-sim
//!
//! Cycle-accounting memory-hierarchy substrate for the MetaLeak
//! reproduction: physical address types, set-associative caches, a
//! three-level cache hierarchy, an open-row DRAM model, a memory
//! controller with write buffering/merging/drains, a deterministic RNG
//! and a page-frame allocator model.
//!
//! The paper evaluates on gem5 full-system simulation; this crate is the
//! Rust substitute. It models the *memory-side* state that produces the
//! MetaLeak timing signals — cache residency, metadata-cache residency,
//! DRAM bank/row state and memory-controller queueing — with
//! deterministic, seedable noise (see `DESIGN.md` for the substitution
//! argument).
//!
//! ```
//! use metaleak_sim::prelude::*;
//!
//! let config = SimConfig::default();
//! let mut hier = CacheHierarchy::new(&config);
//! let block = BlockAddr::new(42);
//! let miss = hier.access(CoreId(0), block, false);
//! assert!(miss.hit.is_none());
//! hier.fill(CoreId(0), block, false);
//! assert_eq!(hier.access(CoreId(0), block, false).hit, Some(HitLevel::L1));
//! ```

#![deny(missing_docs)]

pub mod addr;
pub mod cache;
pub mod clock;
pub mod config;
pub mod cow;
pub mod dram;
pub mod fxhash;
pub mod hierarchy;
pub mod interference;
pub mod memctl;
pub mod pages;
pub mod rng;
pub mod stats;
pub mod trace;
pub mod watchdog;

/// Convenient glob import of the common types.
pub mod prelude {
    pub use crate::addr::{
        BlockAddr, CoreId, PageId, PhysAddr, BLOCKS_PER_PAGE, BLOCK_SIZE, PAGE_SIZE,
    };
    pub use crate::cache::{AccessResult, CacheKey, Evicted, Replacement, SetAssocCache};
    pub use crate::clock::{Clock, Cycles};
    pub use crate::config::{CacheConfig, DramConfig, MemCtlConfig, SimConfig};
    pub use crate::cow::{CowMap, CowVec};
    pub use crate::dram::{BankId, Dram, RowOutcome};
    pub use crate::hierarchy::{CacheHierarchy, HierarchyAccess, HitLevel};
    pub use crate::interference::{
        FaultKind, FaultPlan, InterferenceEngine, Perturbation, SampleFate,
    };
    pub use crate::memctl::{DrainReport, MemoryController, ReadOutcome};
    pub use crate::pages::{AllocError, PageAllocator};
    pub use crate::rng::SimRng;
    pub use crate::stats::{Counters, LatencyHistogram, MergeError};
    pub use crate::trace::{
        CryptoKind, MacScope, MemRegion, NullTracer, PathClass, RingTracer, TraceEvent, TraceLog,
        TraceRecord, Tracer,
    };
}
