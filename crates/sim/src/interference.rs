//! Adversarial-interference fault injection.
//!
//! Real MetaLeak measurements fight co-runners thrashing the LLC and
//! metadata caches, DVFS frequency drift, OS preemptions that invalidate
//! in-flight timings, and lost or duplicated probe samples. This module
//! models those disturbances as composable, *seeded* fault processes so
//! the attack runtime's recovery machinery can be exercised
//! deterministically. The engine's legacy `noise_sd` Gaussian jitter is
//! just one [`FaultKind`] here.

use crate::clock::Cycles;
use crate::rng::SimRng;

/// One fault process. All probabilities are per affected event (memory
/// access for latency faults, probe sample for sample faults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FaultKind {
    /// Zero-mean Gaussian latency jitter, folded positive (the legacy
    /// `noise_sd` model): `|N(0, sd)|` extra cycles per access.
    GaussianNoise {
        /// Standard deviation in cycles.
        sd: f64,
    },
    /// DVFS-style slow drift: a sinusoidal multiplicative latency
    /// factor. At phase peak an access takes `(1 + amplitude) * base`.
    LatencyDrift {
        /// Peak fractional slowdown (e.g. 0.2 = up to 20% slower).
        amplitude: f64,
        /// Drift period in cycles.
        period: u64,
    },
    /// A co-runner bursting through the shared LLC/metadata caches:
    /// with probability `rate` per access, `burst_len` random metadata
    /// lines are evicted before the access proceeds.
    EvictionBurst {
        /// Probability a given access coincides with a burst.
        rate: f64,
        /// Random metadata lines displaced per burst.
        burst_len: u32,
    },
    /// OS preemption: with probability `rate`, the measuring context is
    /// descheduled for a uniform `min_cycles..=max_cycles` gap. Any
    /// measurement in flight across the gap is invalidated.
    PreemptionGap {
        /// Probability a given access is preempted.
        rate: f64,
        /// Shortest gap in cycles.
        min_cycles: u64,
        /// Longest gap in cycles.
        max_cycles: u64,
    },
    /// A probe sample is lost (e.g. the timer read was serviced late
    /// and discarded) with probability `rate`.
    SampleDrop {
        /// Per-sample drop probability.
        rate: f64,
    },
    /// A stale probe sample is delivered twice with probability `rate`.
    SampleDuplicate {
        /// Per-sample duplication probability.
        rate: f64,
    },
}

/// A composable, seeded fault-injection plan. The default plan is
/// clean: no faults, no perturbation.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Seed of the dedicated interference RNG (separate from the
    /// engine's own RNG so fault schedules reproduce independently).
    pub seed: u64,
    /// Active fault processes, applied in order.
    pub faults: Vec<FaultKind>,
}

impl Default for FaultPlan {
    fn default() -> Self {
        Self::clean()
    }
}

impl FaultPlan {
    /// The fault-free plan.
    pub fn clean() -> Self {
        FaultPlan { seed: 0x1A7E_12F3_12EA_CE00, faults: Vec::new() }
    }

    /// Gaussian jitter only — the legacy `noise_sd` behaviour.
    pub fn gaussian(sd: f64) -> Self {
        Self::clean().with(FaultKind::GaussianNoise { sd })
    }

    /// Adds a fault process to the plan.
    #[must_use]
    pub fn with(mut self, fault: FaultKind) -> Self {
        self.faults.push(fault);
        self
    }

    /// Re-seeds the plan.
    #[must_use]
    pub fn seeded(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// True when no fault process is active.
    pub fn is_clean(&self) -> bool {
        self.faults.is_empty()
    }

    /// A full adversarial mix scaled by `intensity` in `[0, 1]`:
    /// every fault kind active at once, each growing linearly with the
    /// intensity. `0.0` returns the clean plan.
    pub fn at_intensity(intensity: f64, seed: u64) -> Self {
        let i = intensity.clamp(0.0, 1.0);
        if i == 0.0 {
            return Self::clean().seeded(seed);
        }
        FaultPlan {
            seed,
            faults: vec![
                FaultKind::GaussianNoise { sd: 80.0 * i },
                FaultKind::LatencyDrift { amplitude: 0.10 * i, period: 40_000 },
                FaultKind::EvictionBurst { rate: 0.04 * i, burst_len: 1 + (7.0 * i) as u32 },
                FaultKind::PreemptionGap { rate: 0.01 * i, min_cycles: 2_000, max_cycles: 30_000 },
                FaultKind::SampleDrop { rate: 0.03 * i },
                FaultKind::SampleDuplicate { rate: 0.02 * i },
            ],
        }
    }
}

/// Latency-side outcome of one access under interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Perturbation {
    /// Extra cycles added to the observed latency (jitter + drift).
    pub extra_latency: Cycles,
    /// A preemption gap the measuring context slept through, if any.
    /// The measurement spanning it cannot be trusted.
    pub gap: Option<Cycles>,
}

impl Perturbation {
    /// The identity perturbation.
    pub const NONE: Perturbation = Perturbation { extra_latency: Cycles::ZERO, gap: None };
}

/// What becomes of one probe sample under interference.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SampleFate {
    /// Delivered normally.
    Keep,
    /// Lost; the measurement slot yields nothing.
    Drop,
    /// Delivered, but a stale duplicate replaces the fresh value.
    Duplicate,
}

/// The seeded runtime evaluating a [`FaultPlan`]. Owned by the secure
/// memory engine; attacks consult it (through the engine) for sample
/// fates.
#[derive(Debug, Clone)]
pub struct InterferenceEngine {
    plan: FaultPlan,
    rng: SimRng,
    gaps_injected: u64,
    bursts_injected: u64,
    samples_dropped: u64,
    samples_duplicated: u64,
}

impl InterferenceEngine {
    /// Builds the engine for `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = SimRng::seed_from(plan.seed);
        InterferenceEngine {
            plan,
            rng,
            gaps_injected: 0,
            bursts_injected: 0,
            samples_dropped: 0,
            samples_duplicated: 0,
        }
    }

    /// The active plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True when at least one fault process is active.
    pub fn is_active(&self) -> bool {
        !self.plan.is_clean()
    }

    /// Preemption gaps injected so far.
    pub fn gaps_injected(&self) -> u64 {
        self.gaps_injected
    }

    /// Co-runner eviction bursts injected so far.
    pub fn bursts_injected(&self) -> u64 {
        self.bursts_injected
    }

    /// Probe samples dropped so far.
    pub fn samples_dropped(&self) -> u64 {
        self.samples_dropped
    }

    /// Probe samples duplicated so far.
    pub fn samples_duplicated(&self) -> u64 {
        self.samples_duplicated
    }

    /// The interference RNG (used by the engine to pick burst victims).
    pub fn rng_mut(&mut self) -> &mut SimRng {
        &mut self.rng
    }

    /// Restarts the fault schedule from `seed`, keeping the fault
    /// processes. Forked simulator snapshots use this to give each fork
    /// an independent interference stream: without a reseed every fork
    /// would replay the parent's exact fault schedule.
    ///
    /// The restart is complete: the stream RNG, the plan's recorded
    /// seed and the schedule's position cursor (the injection counters)
    /// all reset, exactly as if the engine had been constructed from
    /// the reseeded plan. Previously only the RNG was replaced, so a
    /// reseeded fork resumed mid-schedule — its fault draws stayed
    /// silently correlated with its siblings' — and its sidecar
    /// accounting inherited the warmup's injection counts.
    pub fn reseed(&mut self, seed: u64) {
        self.plan.seed = seed;
        self.rng = SimRng::seed_from(seed);
        self.gaps_injected = 0;
        self.bursts_injected = 0;
        self.samples_dropped = 0;
        self.samples_duplicated = 0;
    }

    /// Latency perturbation for one access of base latency `base`
    /// issued at time `now`.
    pub fn perturb(&mut self, now: Cycles, base: Cycles) -> Perturbation {
        if self.plan.faults.is_empty() {
            return Perturbation::NONE;
        }
        let mut extra = 0.0f64;
        let mut gap = None;
        for fault in &self.plan.faults {
            match *fault {
                FaultKind::GaussianNoise { sd } => {
                    if sd > 0.0 {
                        extra += (self.rng.gaussian() * sd).abs();
                    }
                }
                FaultKind::LatencyDrift { amplitude, period } => {
                    if amplitude > 0.0 && period > 0 {
                        let phase = now.as_u64() % period;
                        let theta = phase as f64 / period as f64 * core::f64::consts::TAU;
                        let factor = amplitude * 0.5 * (1.0 + theta.sin());
                        extra += base.as_u64() as f64 * factor;
                    }
                }
                FaultKind::PreemptionGap { rate, min_cycles, max_cycles } => {
                    if gap.is_none() && self.rng.chance(rate) {
                        let hi = max_cycles.max(min_cycles);
                        let span = hi - min_cycles + 1;
                        let g = min_cycles + self.rng.below(span);
                        gap = Some(Cycles::new(g));
                        self.gaps_injected += 1;
                    }
                }
                // Handled by co_runner_evictions() / sample_fate().
                FaultKind::EvictionBurst { .. }
                | FaultKind::SampleDrop { .. }
                | FaultKind::SampleDuplicate { .. } => {}
            }
        }
        Perturbation { extra_latency: Cycles::new(extra as u64), gap }
    }

    /// Number of random metadata-cache lines a co-runner displaces
    /// coincident with the current access (0 almost always).
    pub fn co_runner_evictions(&mut self) -> u32 {
        let mut total = 0u32;
        for i in 0..self.plan.faults.len() {
            if let FaultKind::EvictionBurst { rate, burst_len } = self.plan.faults[i] {
                if burst_len > 0 && self.rng.chance(rate) {
                    total += burst_len;
                    self.bursts_injected += 1;
                }
            }
        }
        total
    }

    /// Draws the fate of one probe sample.
    pub fn sample_fate(&mut self) -> SampleFate {
        for i in 0..self.plan.faults.len() {
            match self.plan.faults[i] {
                FaultKind::SampleDrop { rate } if self.rng.chance(rate) => {
                    self.samples_dropped += 1;
                    return SampleFate::Drop;
                }
                FaultKind::SampleDuplicate { rate } if self.rng.chance(rate) => {
                    self.samples_duplicated += 1;
                    return SampleFate::Duplicate;
                }
                _ => {}
            }
        }
        SampleFate::Keep
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_plan_is_inert() {
        let mut engine = InterferenceEngine::new(FaultPlan::clean());
        assert!(!engine.is_active());
        for t in 0..100u64 {
            let p = engine.perturb(Cycles::new(t * 17), Cycles::new(200));
            assert_eq!(p, Perturbation::NONE);
            assert_eq!(engine.co_runner_evictions(), 0);
            assert_eq!(engine.sample_fate(), SampleFate::Keep);
        }
    }

    #[test]
    fn gaussian_plan_matches_legacy_noise_shape() {
        let mut engine = InterferenceEngine::new(FaultPlan::gaussian(30.0).seeded(7));
        let mut nonzero = 0;
        for _ in 0..200 {
            let p = engine.perturb(Cycles::ZERO, Cycles::new(100));
            assert!(p.gap.is_none());
            if p.extra_latency > Cycles::ZERO {
                nonzero += 1;
            }
            // |N(0,30)| beyond 6 sigma is absurd.
            assert!(p.extra_latency < Cycles::new(300));
        }
        assert!(nonzero > 100, "jitter should usually be nonzero, got {nonzero}");
    }

    #[test]
    fn drift_is_periodic_and_bounded() {
        let plan =
            FaultPlan::clean().with(FaultKind::LatencyDrift { amplitude: 0.5, period: 1000 });
        let mut engine = InterferenceEngine::new(plan);
        let base = Cycles::new(1000);
        for t in (0..5000u64).step_by(50) {
            let p = engine.perturb(Cycles::new(t), base);
            assert!(p.extra_latency <= Cycles::new(500), "at t={t}: {:?}", p);
            let p2 = engine.perturb(Cycles::new(t + 1000), base);
            assert_eq!(p.extra_latency, p2.extra_latency, "drift must be periodic");
        }
    }

    #[test]
    fn preemption_gaps_occur_at_the_configured_rate() {
        let plan = FaultPlan::clean().with(FaultKind::PreemptionGap {
            rate: 0.25,
            min_cycles: 10,
            max_cycles: 20,
        });
        let mut engine = InterferenceEngine::new(plan);
        let mut gaps = 0;
        for _ in 0..1000 {
            if let Some(g) = engine.perturb(Cycles::ZERO, Cycles::new(100)).gap {
                assert!(g >= Cycles::new(10) && g <= Cycles::new(20));
                gaps += 1;
            }
        }
        assert!((150..350).contains(&gaps), "rate 0.25 -> ~250 gaps, got {gaps}");
        assert_eq!(engine.gaps_injected(), gaps);
    }

    #[test]
    fn bursts_and_sample_faults_are_counted() {
        let plan = FaultPlan::clean()
            .with(FaultKind::EvictionBurst { rate: 0.5, burst_len: 3 })
            .with(FaultKind::SampleDrop { rate: 0.3 })
            .with(FaultKind::SampleDuplicate { rate: 0.3 });
        let mut engine = InterferenceEngine::new(plan);
        let mut evictions = 0u32;
        let (mut drops, mut dups) = (0, 0);
        for _ in 0..1000 {
            evictions += engine.co_runner_evictions();
            match engine.sample_fate() {
                SampleFate::Drop => drops += 1,
                SampleFate::Duplicate => dups += 1,
                SampleFate::Keep => {}
            }
        }
        assert!(evictions > 0 && evictions.is_multiple_of(3));
        assert!(drops > 100, "drop rate 0.3 -> ~300, got {drops}");
        assert!(dups > 50, "duplicates after surviving drops, got {dups}");
        assert_eq!(engine.samples_dropped(), drops);
        assert_eq!(engine.samples_duplicated(), dups);
    }

    #[test]
    fn same_seed_reproduces_the_fault_schedule() {
        let plan = FaultPlan::at_intensity(0.5, 0xFA17);
        let run = |plan: FaultPlan| {
            let mut engine = InterferenceEngine::new(plan);
            (0..200u64)
                .map(|t| {
                    let p = engine.perturb(Cycles::new(t * 31), Cycles::new(150));
                    let e = engine.co_runner_evictions();
                    let f = engine.sample_fate();
                    (p, e, f)
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(plan.clone()), run(plan));
    }

    #[test]
    fn reseed_restarts_the_schedule_from_scratch() {
        let plan = FaultPlan::at_intensity(1.0, 0xBEEF);
        let mut warmed = InterferenceEngine::new(plan.clone());
        for t in 0..500u64 {
            warmed.perturb(Cycles::new(t * 13), Cycles::new(120));
            warmed.co_runner_evictions();
            warmed.sample_fate();
        }
        assert!(warmed.gaps_injected() > 0, "warmup must advance the schedule");
        warmed.reseed(0xBEEF);
        // A reseeded engine is indistinguishable from a freshly
        // constructed one: same recorded seed, zeroed position cursor,
        // identical subsequent draws.
        assert_eq!(warmed.plan().seed, 0xBEEF);
        assert_eq!(warmed.gaps_injected(), 0);
        assert_eq!(warmed.bursts_injected(), 0);
        assert_eq!(warmed.samples_dropped(), 0);
        assert_eq!(warmed.samples_duplicated(), 0);
        let mut fresh = InterferenceEngine::new(plan);
        for t in 0..200u64 {
            assert_eq!(
                warmed.perturb(Cycles::new(t * 31), Cycles::new(150)),
                fresh.perturb(Cycles::new(t * 31), Cycles::new(150)),
            );
            assert_eq!(warmed.co_runner_evictions(), fresh.co_runner_evictions());
            assert_eq!(warmed.sample_fate(), fresh.sample_fate());
        }
    }

    #[test]
    fn forks_reseeded_differently_draw_independent_schedules() {
        let mut parent = InterferenceEngine::new(FaultPlan::at_intensity(1.0, 1));
        for t in 0..100u64 {
            parent.perturb(Cycles::new(t), Cycles::new(100));
        }
        let run = |mut engine: InterferenceEngine| {
            (0..100u64)
                .map(|t| engine.perturb(Cycles::new(t * 7), Cycles::new(100)))
                .collect::<Vec<_>>()
        };
        let mut a = parent.clone();
        let mut b = parent.clone();
        a.reseed(11);
        b.reseed(12);
        assert_ne!(run(a), run(b), "different fork seeds must decorrelate the streams");
    }

    #[test]
    fn intensity_zero_is_clean_and_one_is_everything() {
        assert!(FaultPlan::at_intensity(0.0, 1).is_clean());
        let full = FaultPlan::at_intensity(1.0, 1);
        assert_eq!(full.faults.len(), 6);
        // Out-of-range intensities clamp instead of exploding.
        assert_eq!(FaultPlan::at_intensity(7.0, 1), full);
    }
}
