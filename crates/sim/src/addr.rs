//! Physical address types and geometry constants.
//!
//! The simulator works on a flat physical address space divided into
//! 64-byte blocks (cache lines) and 4-KiB pages, matching the
//! configuration in Table I of the paper. Newtypes keep block-, page-
//! and byte-granular quantities statically distinct (C-NEWTYPE).

use core::fmt;

/// Size of one memory block / cache line in bytes.
pub const BLOCK_SIZE: usize = 64;
/// log2 of [`BLOCK_SIZE`].
pub const BLOCK_SHIFT: u32 = 6;
/// Size of one physical page in bytes.
pub const PAGE_SIZE: usize = 4096;
/// log2 of [`PAGE_SIZE`].
pub const PAGE_SHIFT: u32 = 12;
/// Number of blocks per page (64 for 64 B blocks / 4 KiB pages).
pub const BLOCKS_PER_PAGE: usize = PAGE_SIZE / BLOCK_SIZE;

/// A byte-granular physical address.
///
/// ```
/// use metaleak_sim::addr::{PhysAddr, BLOCK_SIZE};
/// let a = PhysAddr::new(0x1234);
/// assert_eq!(a.block().byte_addr().as_u64(), 0x1200);
/// assert_eq!(a.offset_in_block(), 0x34);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates an address from a raw byte value.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// The block (cache line) containing this address.
    pub const fn block(self) -> BlockAddr {
        BlockAddr(self.0 >> BLOCK_SHIFT)
    }

    /// The page containing this address.
    pub const fn page(self) -> PageId {
        PageId(self.0 >> PAGE_SHIFT)
    }

    /// Byte offset within the containing block.
    pub const fn offset_in_block(self) -> usize {
        (self.0 as usize) & (BLOCK_SIZE - 1)
    }

    /// Byte offset within the containing page.
    pub const fn offset_in_page(self) -> usize {
        (self.0 as usize) & (PAGE_SIZE - 1)
    }

    /// Returns the address advanced by `bytes`.
    pub const fn add(self, bytes: u64) -> Self {
        PhysAddr(self.0 + bytes)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:012x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

/// A block-granular (cache-line-granular) address: byte address divided
/// by [`BLOCK_SIZE`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct BlockAddr(u64);

impl BlockAddr {
    /// Creates a block address from a block index (not a byte address).
    pub const fn new(index: u64) -> Self {
        BlockAddr(index)
    }

    /// The block index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// First byte address of this block.
    pub const fn byte_addr(self) -> PhysAddr {
        PhysAddr(self.0 << BLOCK_SHIFT)
    }

    /// The page containing this block.
    pub const fn page(self) -> PageId {
        PageId(self.0 >> (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// Index of this block within its page (0..=63).
    pub const fn index_in_page(self) -> usize {
        (self.0 as usize) % BLOCKS_PER_PAGE
    }

    /// Returns the block `n` blocks after this one.
    pub const fn add(self, n: u64) -> Self {
        BlockAddr(self.0 + n)
    }
}

impl fmt::Display for BlockAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk:{:#x}", self.0)
    }
}

impl From<PhysAddr> for BlockAddr {
    fn from(a: PhysAddr) -> Self {
        a.block()
    }
}

/// A physical page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PageId(u64);

impl PageId {
    /// Creates a page id from a page frame number.
    pub const fn new(pfn: u64) -> Self {
        PageId(pfn)
    }

    /// The page frame number.
    pub const fn pfn(self) -> u64 {
        self.0
    }

    /// First byte address of this page.
    pub const fn byte_addr(self) -> PhysAddr {
        PhysAddr(self.0 << PAGE_SHIFT)
    }

    /// First block of this page.
    pub const fn first_block(self) -> BlockAddr {
        BlockAddr(self.0 << (PAGE_SHIFT - BLOCK_SHIFT))
    }

    /// The `i`-th block of this page.
    ///
    /// # Panics
    /// Panics if `i >= BLOCKS_PER_PAGE`.
    pub fn block(self, i: usize) -> BlockAddr {
        assert!(i < BLOCKS_PER_PAGE, "block index {i} out of page range");
        BlockAddr((self.0 << (PAGE_SHIFT - BLOCK_SHIFT)) + i as u64)
    }

    /// Returns the page `n` pages after this one.
    pub const fn add(self, n: u64) -> Self {
        PageId(self.0 + n)
    }
}

impl fmt::Display for PageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "page:{:#x}", self.0)
    }
}

/// Identifier of a simulated core.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct CoreId(pub usize);

impl fmt::Display for CoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "core{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn block_and_page_extraction() {
        let a = PhysAddr::new(0x12345);
        assert_eq!(a.block().index(), 0x12345 >> 6);
        assert_eq!(a.page().pfn(), 0x12);
        assert_eq!(a.offset_in_block(), 0x05);
        assert_eq!(a.offset_in_page(), 0x345);
    }

    #[test]
    fn block_round_trips_through_bytes() {
        let b = BlockAddr::new(1234);
        assert_eq!(b.byte_addr().block(), b);
    }

    #[test]
    fn page_block_indexing() {
        let p = PageId::new(7);
        assert_eq!(p.first_block(), p.block(0));
        assert_eq!(p.block(63).index_in_page(), 63);
        assert_eq!(p.block(63).page(), p);
        assert_eq!(p.add(1).first_block().index(), p.block(63).index() + 1);
    }

    #[test]
    #[should_panic(expected = "out of page range")]
    fn page_block_out_of_range_panics() {
        let _ = PageId::new(0).block(BLOCKS_PER_PAGE);
    }

    #[test]
    fn blocks_per_page_is_consistent() {
        assert_eq!(BLOCKS_PER_PAGE, 64);
        assert_eq!(1usize << BLOCK_SHIFT, BLOCK_SIZE);
        assert_eq!(1usize << PAGE_SHIFT, PAGE_SIZE);
    }

    #[test]
    fn display_formats() {
        assert_eq!(PhysAddr::new(0x40).to_string(), "0x000000000040");
        assert_eq!(BlockAddr::new(0x40).to_string(), "blk:0x40");
        assert_eq!(PageId::new(2).to_string(), "page:0x2");
        assert_eq!(CoreId(3).to_string(), "core3");
    }
}
