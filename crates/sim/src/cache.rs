//! Generic set-associative cache model.
//!
//! The same structure backs the data caches (L1/L2/L3) and the
//! metadata caches at the memory controller (counter cache and
//! integrity-tree cache), keyed by whatever identifier the owner uses.

use crate::config::CacheConfig;
use crate::cow::CowVec;
use crate::rng::SimRng;
use std::fmt::Debug;
use std::hash::Hash;

/// Keys usable in a [`SetAssocCache`]: anything that can expose a stable
/// 64-bit identity used for set indexing.
pub trait CacheKey: Copy + Eq + Hash + Debug {
    /// A stable numeric identity; consecutive lines should usually have
    /// consecutive ids so they spread over sets like real addresses.
    fn cache_id(&self) -> u64;
}

impl CacheKey for u64 {
    fn cache_id(&self) -> u64 {
        *self
    }
}

impl CacheKey for crate::addr::BlockAddr {
    fn cache_id(&self) -> u64 {
        self.index()
    }
}

/// Replacement policy for a [`SetAssocCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Replacement {
    /// Least-recently-used (the default for all modelled caches).
    Lru,
    /// Uniformly random victim selection.
    Random,
}

/// One resident line.
#[derive(Debug, Clone, Copy)]
struct Line<K> {
    key: K,
    dirty: bool,
    /// LRU stamp: larger = more recent.
    stamp: u64,
}

/// A line evicted to make room for a fill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Evicted<K> {
    /// The evicted key.
    pub key: K,
    /// Whether the victim was dirty (requires writeback).
    pub dirty: bool,
}

/// Outcome of a lookup-with-fill access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult<K> {
    /// True if the key was already resident.
    pub hit: bool,
    /// A victim evicted by the fill, if any.
    pub evicted: Option<Evicted<K>>,
}

/// A set-associative cache with per-set LRU or random replacement.
///
/// ```
/// use metaleak_sim::cache::SetAssocCache;
/// use metaleak_sim::config::CacheConfig;
/// let mut c: SetAssocCache<u64> = SetAssocCache::new(CacheConfig::new(4096, 4, 1));
/// assert!(!c.access(10, false).hit);
/// assert!(c.access(10, false).hit);
/// ```
/// The set array is a [`CowVec`], so cloning a cache (for a snapshot
/// fork) is O(1) and a fork pays only for the sets it actually
/// touches. Membership tests scan the key's set — at most `ways`
/// comparisons, no side index to keep in sync.
#[derive(Debug, Clone)]
pub struct SetAssocCache<K: CacheKey> {
    sets: CowVec<Vec<Line<K>>>,
    ways: usize,
    policy: Replacement,
    tick: u64,
    rng: SimRng,
    /// Total resident lines (maintained incrementally).
    len: usize,
}

impl<K: CacheKey> SetAssocCache<K> {
    /// Creates a cache from a [`CacheConfig`] with LRU replacement.
    pub fn new(config: CacheConfig) -> Self {
        Self::with_policy(config, Replacement::Lru, 0)
    }

    /// Creates a cache with an explicit policy and RNG seed (used by the
    /// random policy).
    pub fn with_policy(config: CacheConfig, policy: Replacement, seed: u64) -> Self {
        let sets = config.sets();
        assert!(sets > 0, "cache must have at least one set");
        SetAssocCache {
            sets: CowVec::from_fn(sets, |_| Vec::with_capacity(config.ways)),
            ways: config.ways,
            policy,
            tick: 0,
            rng: SimRng::seed_from(seed ^ 0xC0FF_EE11),
            len: 0,
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets.len()
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// The set index a key maps to.
    pub fn set_index(&self, key: K) -> usize {
        (key.cache_id() % self.sets.len() as u64) as usize
    }

    /// Whether `key` is resident (does not update LRU state).
    pub fn contains(&self, key: K) -> bool {
        let set_idx = self.set_index(key);
        self.sets.get(set_idx).iter().any(|l| l.key == key)
    }

    /// Accesses `key`, filling it on a miss. `write` marks the line dirty.
    /// Returns hit status and any evicted victim.
    pub fn access(&mut self, key: K, write: bool) -> AccessResult<K> {
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_index(key);
        if self.contains(key) {
            let line = self.sets.get_mut(set_idx).iter_mut().find(|l| l.key == key);
            let line = line.expect("residency checked above");
            line.stamp = tick;
            line.dirty |= write;
            return AccessResult { hit: true, evicted: None };
        }
        // Miss: fill.
        let set_len = self.sets.get(set_idx).len();
        let evicted = if set_len < self.ways {
            None
        } else {
            let victim_idx = match self.policy {
                Replacement::Lru => self
                    .sets
                    .get(set_idx)
                    .iter()
                    .enumerate()
                    .min_by_key(|(_, l)| l.stamp)
                    .map(|(i, _)| i)
                    .expect("nonempty set"),
                Replacement::Random => self.rng.index(set_len),
            };
            let victim = self.sets.get_mut(set_idx).swap_remove(victim_idx);
            self.len -= 1;
            Some(Evicted { key: victim.key, dirty: victim.dirty })
        };
        self.sets.get_mut(set_idx).push(Line { key, dirty: write, stamp: tick });
        self.len += 1;
        AccessResult { hit: false, evicted }
    }

    /// Touches `key` if resident (LRU refresh) without filling on miss.
    /// Returns whether it hit.
    pub fn touch(&mut self, key: K) -> bool {
        self.tick += 1;
        if !self.contains(key) {
            return false;
        }
        let tick = self.tick;
        let set_idx = self.set_index(key);
        let line = self.sets.get_mut(set_idx).iter_mut().find(|l| l.key == key);
        line.expect("residency checked above").stamp = tick;
        true
    }

    /// Marks `key` dirty if resident. Returns whether it was resident.
    pub fn mark_dirty(&mut self, key: K) -> bool {
        if !self.contains(key) {
            return false;
        }
        let set_idx = self.set_index(key);
        let line = self.sets.get_mut(set_idx).iter_mut().find(|l| l.key == key);
        line.expect("residency checked above").dirty = true;
        true
    }

    /// Whether a resident `key` is dirty (false if absent).
    pub fn is_dirty(&self, key: K) -> bool {
        let set_idx = self.set_index(key);
        self.sets.get(set_idx).iter().find(|l| l.key == key).map(|l| l.dirty).unwrap_or(false)
    }

    /// Removes `key`; returns its dirty flag if it was resident.
    pub fn invalidate(&mut self, key: K) -> Option<bool> {
        let set_idx = self.set_index(key);
        let pos = self.sets.get(set_idx).iter().position(|l| l.key == key)?;
        let line = self.sets.get_mut(set_idx).swap_remove(pos);
        self.len -= 1;
        Some(line.dirty)
    }

    /// Removes every line, returning the dirty keys (writebacks).
    pub fn flush_all(&mut self) -> Vec<K> {
        let mut dirty = Vec::new();
        for set_idx in 0..self.sets.len() {
            if self.sets.get(set_idx).is_empty() {
                continue;
            }
            for line in self.sets.get_mut(set_idx).drain(..) {
                if line.dirty {
                    dirty.push(line.key);
                }
            }
        }
        self.len = 0;
        dirty
    }

    /// Evicts one uniformly random resident line (co-runner pressure
    /// injected by the interference layer). Victim choice is driven by
    /// the caller's `rng` so fault schedules stay reproducible. Returns
    /// the displaced line, or `None` if the cache is empty.
    pub fn evict_random(&mut self, rng: &mut SimRng) -> Option<Evicted<K>> {
        if self.len == 0 {
            return None;
        }
        let mut nth = rng.index(self.len);
        for set_idx in 0..self.sets.len() {
            let set_len = self.sets.get(set_idx).len();
            if nth < set_len {
                let line = self.sets.get_mut(set_idx).swap_remove(nth);
                self.len -= 1;
                return Some(Evicted { key: line.key, dirty: line.dirty });
            }
            nth -= set_len;
        }
        unreachable!("residency count is consistent with set contents")
    }

    /// Keys currently resident in the same set as `key`.
    pub fn set_occupants(&self, key: K) -> Vec<K> {
        let set_idx = self.set_index(key);
        self.sets.get(set_idx).iter().map(|l| l.key).collect()
    }

    /// Total resident lines.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the cache holds no lines.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Forces the set array fully private, materializing every chunk
    /// still shared with a clone. This reproduces the cost profile of a
    /// pre-copy-on-write deep copy; the `fork_cost` benchmark uses it
    /// as its baseline.
    pub fn unshare(&mut self) {
        self.sets.unshare();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CacheConfig;

    fn tiny() -> SetAssocCache<u64> {
        // 2 sets x 2 ways.
        SetAssocCache::new(CacheConfig::new(2 * 2 * 64, 2, 1))
    }

    #[test]
    fn fill_then_hit() {
        let mut c = tiny();
        assert!(!c.access(0, false).hit);
        assert!(c.access(0, false).hit);
        assert!(c.contains(0));
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // keys 0,2,4 map to set 0 (2 sets).
        c.access(0, false);
        c.access(2, false);
        c.access(0, false); // refresh 0 -> victim should be 2
        let r = c.access(4, false);
        assert_eq!(r.evicted.unwrap().key, 2);
        assert!(c.contains(0) && c.contains(4) && !c.contains(2));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny();
        c.access(0, true);
        c.access(2, false);
        let r = c.access(4, false);
        let ev = r.evicted.unwrap();
        assert_eq!(ev.key, 0);
        assert!(ev.dirty);
    }

    #[test]
    fn touch_does_not_fill() {
        let mut c = tiny();
        assert!(!c.touch(8));
        assert!(!c.contains(8));
        c.access(8, false);
        assert!(c.touch(8));
    }

    #[test]
    fn mark_dirty_and_is_dirty() {
        let mut c = tiny();
        assert!(!c.mark_dirty(0));
        c.access(0, false);
        assert!(!c.is_dirty(0));
        assert!(c.mark_dirty(0));
        assert!(c.is_dirty(0));
    }

    #[test]
    fn invalidate_returns_dirty_flag() {
        let mut c = tiny();
        c.access(0, true);
        assert_eq!(c.invalidate(0), Some(true));
        assert_eq!(c.invalidate(0), None);
        assert!(!c.contains(0));
    }

    #[test]
    fn flush_returns_only_dirty_keys() {
        let mut c = tiny();
        c.access(0, true);
        c.access(1, false);
        c.access(3, true);
        let mut d = c.flush_all();
        d.sort_unstable();
        assert_eq!(d, vec![0, 3]);
        assert!(c.is_empty());
    }

    #[test]
    fn set_occupants_lists_same_set_keys() {
        let mut c = tiny();
        c.access(0, false);
        c.access(2, false);
        c.access(1, false); // other set
        let mut occ = c.set_occupants(4); // set 0
        occ.sort_unstable();
        assert_eq!(occ, vec![0, 2]);
    }

    #[test]
    fn random_policy_eventually_evicts_any_way() {
        let cfg = CacheConfig::new(2 * 2 * 64, 2, 1);
        let mut seen_victims = std::collections::HashSet::new();
        for seed in 0..32 {
            let mut c: SetAssocCache<u64> =
                SetAssocCache::with_policy(cfg, Replacement::Random, seed);
            c.access(0, false);
            c.access(2, false);
            if let Some(ev) = c.access(4, false).evicted {
                seen_victims.insert(ev.key);
            }
        }
        assert_eq!(seen_victims.len(), 2, "random policy should pick both ways across seeds");
    }

    #[test]
    fn evict_random_displaces_exactly_one_resident_line() {
        let mut c = tiny();
        let mut rng = crate::rng::SimRng::seed_from(3);
        assert!(c.evict_random(&mut rng).is_none(), "empty cache has no victim");
        c.access(0, true);
        c.access(1, false);
        c.access(2, false);
        let before = c.len();
        let ev = c.evict_random(&mut rng).expect("victim among residents");
        assert_eq!(c.len(), before - 1);
        assert!(!c.contains(ev.key));
        assert_eq!(ev.dirty, ev.key == 0, "only key 0 was written dirty");
    }

    #[test]
    fn cloned_cache_is_isolated() {
        let mut a = tiny();
        a.access(0, true);
        let b = a.clone();
        a.access(2, false);
        a.invalidate(0);
        assert!(!a.contains(0));
        assert!(b.contains(0) && !b.contains(2));
        assert!(b.is_dirty(0));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn len_tracks_residency() {
        let mut c = tiny();
        assert!(c.is_empty());
        c.access(0, false);
        c.access(1, false);
        assert_eq!(c.len(), 2);
        c.invalidate(0);
        assert_eq!(c.len(), 1);
    }
}
