//! Physical page-frame allocation model.
//!
//! MetaLeak's case studies (§VIII-A1) exploit the per-core free-page
//! management of the OS to steer victim pages onto attacker-chosen
//! frames, achieving integrity-tree co-location. This module models the
//! allocator's observable behaviour: a per-core LIFO free list that an
//! attacker can seed (by freeing chosen frames) so the next victim
//! allocation lands on a chosen frame. Under SGX, the (malicious) OS
//! controls EPC frame assignment directly; [`PageAllocator::allocate_at`]
//! models that privileged capability.

use crate::addr::PageId;
use std::collections::HashSet;

/// Error returned when an allocation cannot be satisfied.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AllocError {
    /// The pool of frames is exhausted.
    OutOfFrames,
    /// A specifically requested frame is already in use.
    FrameBusy(PageId),
}

impl core::fmt::Display for AllocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            AllocError::OutOfFrames => write!(f, "no free page frames remain"),
            AllocError::FrameBusy(p) => write!(f, "requested frame {p} is already allocated"),
        }
    }
}

impl std::error::Error for AllocError {}

/// A simple physical-frame allocator with per-core LIFO free lists.
#[derive(Debug, Clone)]
pub struct PageAllocator {
    /// Next never-used frame.
    next_fresh: u64,
    /// Exclusive upper bound on frames.
    limit: u64,
    /// Per-core LIFO free lists (freed frames are reused first).
    free_lists: Vec<Vec<PageId>>,
    /// Currently allocated frames.
    live: HashSet<PageId>,
}

impl PageAllocator {
    /// Creates an allocator managing frames `[first, first + count)` with
    /// one free list per core.
    pub fn new(first: PageId, count: u64, cores: usize) -> Self {
        PageAllocator {
            next_fresh: first.pfn(),
            limit: first.pfn() + count,
            free_lists: vec![Vec::new(); cores.max(1)],
            live: HashSet::new(),
        }
    }

    /// Allocates one frame for `core`, preferring the core's free list
    /// (LIFO) — the property the attacker exploits to steer placement.
    ///
    /// # Errors
    /// Returns [`AllocError::OutOfFrames`] when exhausted.
    pub fn allocate(&mut self, core: usize) -> Result<PageId, AllocError> {
        let idx = core % self.free_lists.len();
        if let Some(p) = self.free_lists[idx].pop() {
            self.live.insert(p);
            return Ok(p);
        }
        while self.next_fresh < self.limit {
            let p = PageId::new(self.next_fresh);
            self.next_fresh += 1;
            if !self.live.contains(&p) {
                self.live.insert(p);
                return Ok(p);
            }
        }
        Err(AllocError::OutOfFrames)
    }

    /// Allocates a *specific* frame (privileged/OS capability used in the
    /// SGX threat model where the OS chooses EPC frames).
    ///
    /// # Errors
    /// Returns [`AllocError::FrameBusy`] if the frame is live or
    /// [`AllocError::OutOfFrames`] if outside the managed range.
    pub fn allocate_at(&mut self, frame: PageId) -> Result<PageId, AllocError> {
        if frame.pfn() >= self.limit {
            return Err(AllocError::OutOfFrames);
        }
        if self.live.contains(&frame) {
            return Err(AllocError::FrameBusy(frame));
        }
        for list in &mut self.free_lists {
            list.retain(|p| *p != frame);
        }
        // Frames below next_fresh that are neither live nor free-listed
        // were never handed out; claiming them is fine.
        self.live.insert(frame);
        if frame.pfn() >= self.next_fresh {
            // Mark intermediate frames as still fresh; allocate() skips
            // live ones, so only bump past this frame if it is the next.
            if frame.pfn() == self.next_fresh {
                self.next_fresh += 1;
            }
        }
        Ok(frame)
    }

    /// Frees a frame back to `core`'s free list.
    ///
    /// # Panics
    /// Panics if the frame was not allocated (double free).
    pub fn free(&mut self, frame: PageId, core: usize) {
        assert!(self.live.remove(&frame), "double free of {frame}");
        let idx = core % self.free_lists.len();
        self.free_lists[idx].push(frame);
    }

    /// Whether `frame` is currently allocated.
    pub fn is_live(&self, frame: PageId) -> bool {
        self.live.contains(&frame)
    }

    /// Number of live frames.
    pub fn live_count(&self) -> usize {
        self.live.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc() -> PageAllocator {
        PageAllocator::new(PageId::new(0x100), 64, 2)
    }

    #[test]
    fn fresh_allocations_are_sequential() {
        let mut a = alloc();
        assert_eq!(a.allocate(0).unwrap().pfn(), 0x100);
        assert_eq!(a.allocate(0).unwrap().pfn(), 0x101);
    }

    #[test]
    fn lifo_reuse_enables_placement_steering() {
        let mut a = alloc();
        let p1 = a.allocate(0).unwrap();
        let _p2 = a.allocate(0).unwrap();
        a.free(p1, 0);
        // Victim allocating on the same core gets the attacker-freed frame.
        assert_eq!(a.allocate(0).unwrap(), p1);
    }

    #[test]
    fn free_lists_are_per_core() {
        let mut a = alloc();
        let p1 = a.allocate(0).unwrap();
        a.free(p1, 0);
        // Core 1 does not see core 0's freed frame first.
        assert_ne!(a.allocate(1).unwrap(), p1);
    }

    #[test]
    fn allocate_at_claims_specific_frame() {
        let mut a = alloc();
        let target = PageId::new(0x120);
        assert_eq!(a.allocate_at(target).unwrap(), target);
        assert_eq!(a.allocate_at(target), Err(AllocError::FrameBusy(target)));
    }

    #[test]
    fn allocate_skips_frames_claimed_specifically() {
        let mut a = alloc();
        a.allocate_at(PageId::new(0x100)).unwrap();
        assert_eq!(a.allocate(0).unwrap().pfn(), 0x101);
    }

    #[test]
    fn exhaustion_errors() {
        let mut a = PageAllocator::new(PageId::new(0), 2, 1);
        a.allocate(0).unwrap();
        a.allocate(0).unwrap();
        assert_eq!(a.allocate(0), Err(AllocError::OutOfFrames));
        assert!(a.allocate_at(PageId::new(5)).is_err());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_panics() {
        let mut a = alloc();
        let p = a.allocate(0).unwrap();
        a.free(p, 0);
        a.free(p, 0);
    }
}
