//! Cycle counting primitives.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Sub};

/// A duration or timestamp measured in CPU cycles.
///
/// All latencies in the simulator are expressed in [`Cycles`] so that
/// byte counts, cycle counts and indices cannot be confused.
///
/// ```
/// use metaleak_sim::clock::Cycles;
/// let total = Cycles::new(40) + Cycles::new(2);
/// assert_eq!(total.as_u64(), 42);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count.
    pub const fn new(n: u64) -> Self {
        Cycles(n)
    }

    /// Raw cycle count.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Saturating subtraction.
    pub const fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// Multiplies the count by an integer factor.
    pub const fn times(self, k: u64) -> Cycles {
        Cycles(self.0 * k)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(n: u64) -> Self {
        Cycles(n)
    }
}

/// A monotonically advancing global clock.
///
/// The simulator is cycle-accounting rather than event-driven: components
/// return latencies, and drivers advance a shared [`Clock`].
///
/// Every advance reports its delta to the per-thread
/// [`watchdog`](crate::watchdog), which is how supervised trials get
/// deterministic cycle-budget deadlines; when no budget is armed the
/// report is a single thread-local flag read.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: Cycles,
}

impl Clock {
    /// Creates a clock at cycle zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current timestamp.
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `d` and returns the new timestamp.
    ///
    /// # Panics
    /// Panics with a [`DeadlineExceeded`](crate::watchdog::DeadlineExceeded)
    /// payload when an armed watchdog budget is exhausted by this step.
    pub fn advance(&mut self, d: Cycles) -> Cycles {
        crate::watchdog::spend(d.as_u64());
        self.now += d;
        self.now
    }

    /// Advances the clock to at least `t` (no-op if already past).
    ///
    /// # Panics
    /// Panics with a [`DeadlineExceeded`](crate::watchdog::DeadlineExceeded)
    /// payload when an armed watchdog budget is exhausted by this step.
    pub fn advance_to(&mut self, t: Cycles) {
        if t > self.now {
            crate::watchdog::spend((t - self.now).as_u64());
            self.now = t;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        let a = Cycles::new(10);
        let b = Cycles::new(3);
        assert_eq!((a + b).as_u64(), 13);
        assert_eq!((a - b).as_u64(), 7);
        assert_eq!(b.saturating_sub(a), Cycles::ZERO);
        assert_eq!(a.times(4).as_u64(), 40);
        let s: Cycles = [a, b, b].into_iter().sum();
        assert_eq!(s.as_u64(), 16);
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut c = Clock::new();
        assert_eq!(c.now(), Cycles::ZERO);
        c.advance(Cycles::new(5));
        c.advance_to(Cycles::new(3)); // no-op
        assert_eq!(c.now().as_u64(), 5);
        c.advance_to(Cycles::new(9));
        assert_eq!(c.now().as_u64(), 9);
    }
}
