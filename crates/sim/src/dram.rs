//! Open-row DRAM bank model.

use crate::addr::BlockAddr;
use crate::clock::Cycles;
use crate::config::DramConfig;
use crate::stats::Counters;

/// Identifier of a (channel, rank, bank) tuple.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct BankId {
    /// Channel index.
    pub channel: usize,
    /// Rank within channel.
    pub rank: usize,
    /// Bank within rank.
    pub bank: usize,
}

/// Row-buffer outcome of an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RowOutcome {
    /// The requested row was already open.
    Hit,
    /// The bank had no open row.
    Closed,
    /// A different row was open and had to be precharged.
    Conflict,
}

/// Open-row DRAM model: per-bank open-row tracking with hit / closed /
/// conflict latencies, using a block-interleaved address mapping
/// (low bits → channel, then bank, then rank; remainder → row).
#[derive(Debug, Clone)]
pub struct Dram {
    config: DramConfig,
    /// Open row per bank, linear index = ((channel*ranks)+rank)*banks+bank.
    open_rows: Vec<Option<u64>>,
    /// Event counters (row hits/misses/conflicts).
    pub stats: Counters,
}

impl Dram {
    /// Creates a DRAM model with all banks closed.
    pub fn new(config: DramConfig) -> Self {
        let n = config.channels * config.ranks * config.banks;
        Dram { config, open_rows: vec![None; n], stats: Counters::new() }
    }

    /// The configuration in use.
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// Maps a block to its bank.
    pub fn bank_of(&self, block: BlockAddr) -> BankId {
        let idx = block.index();
        let channel = (idx % self.config.channels as u64) as usize;
        let rest = idx / self.config.channels as u64;
        let bank = (rest % self.config.banks as u64) as usize;
        let rest = rest / self.config.banks as u64;
        let rank = (rest % self.config.ranks as u64) as usize;
        BankId { channel, rank, bank }
    }

    /// Maps a block to its DRAM row within its bank.
    pub fn row_of(&self, block: BlockAddr) -> u64 {
        let idx = block.index();
        let per_row_blocks = 128; // 8 KiB row / 64 B blocks
        idx / (self.config.channels * self.config.banks * self.config.ranks) as u64 / per_row_blocks
    }

    fn linear_bank(&self, b: BankId) -> usize {
        ((b.channel * self.config.ranks) + b.rank) * self.config.banks + b.bank
    }

    /// Total number of banks across all channels and ranks.
    pub fn num_banks(&self) -> usize {
        self.open_rows.len()
    }

    /// Dense index in `0..num_banks()` of the bank holding `block`,
    /// stable for a given configuration. Lets callers keep per-bank
    /// state in a flat vector instead of a [`BankId`]-keyed map.
    pub fn bank_slot_of(&self, block: BlockAddr) -> usize {
        self.linear_bank(self.bank_of(block))
    }

    /// Services one block access, updating the bank's row buffer.
    /// Returns the access latency and the row outcome.
    pub fn access(&mut self, block: BlockAddr) -> (Cycles, RowOutcome) {
        let bank = self.bank_of(block);
        let row = self.row_of(block);
        let slot = self.linear_bank(bank);
        let outcome = match self.open_rows[slot] {
            Some(open) if open == row => RowOutcome::Hit,
            Some(_) => RowOutcome::Conflict,
            None => RowOutcome::Closed,
        };
        self.open_rows[slot] = Some(row);
        let latency = match outcome {
            RowOutcome::Hit => {
                self.stats.bump("row_hit");
                self.config.row_hit
            }
            RowOutcome::Closed => {
                self.stats.bump("row_closed");
                self.config.row_closed
            }
            RowOutcome::Conflict => {
                self.stats.bump("row_conflict");
                self.config.row_conflict
            }
        };
        (latency, outcome)
    }

    /// Closes every row buffer (e.g. refresh boundary).
    pub fn precharge_all(&mut self) {
        for r in &mut self.open_rows {
            *r = None;
        }
    }

    /// Whether two blocks share a bank (used by attacks that time reads
    /// against same-bank victim traffic, Figure 8).
    pub fn same_bank(&self, a: BlockAddr, b: BlockAddr) -> bool {
        self.bank_of(a) == self.bank_of(b)
    }

    /// Finds a block in the same bank as `target`, starting the search at
    /// `start` and advancing block-by-block.
    pub fn find_same_bank_block(&self, target: BlockAddr, start: BlockAddr) -> BlockAddr {
        let mut b = start;
        loop {
            if self.same_bank(b, target) && b != target {
                return b;
            }
            b = b.add(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(DramConfig::default())
    }

    #[test]
    fn first_access_is_closed_then_hit() {
        let mut d = dram();
        let b = BlockAddr::new(0);
        let (l1, o1) = d.access(b);
        assert_eq!(o1, RowOutcome::Closed);
        assert_eq!(l1.as_u64(), 75);
        let (l2, o2) = d.access(b);
        assert_eq!(o2, RowOutcome::Hit);
        assert_eq!(l2.as_u64(), 40);
    }

    #[test]
    fn different_row_same_bank_conflicts() {
        let mut d = dram();
        let a = BlockAddr::new(0);
        // Same bank, different row: stride = channels*ranks*banks*blocks_per_row.
        let stride = (2 * 2 * 8 * 128) as u64;
        let b = BlockAddr::new(stride);
        assert!(d.same_bank(a, b));
        assert_ne!(d.row_of(a), d.row_of(b));
        d.access(a);
        let (lat, o) = d.access(b);
        assert_eq!(o, RowOutcome::Conflict);
        assert_eq!(lat.as_u64(), 110);
    }

    #[test]
    fn adjacent_blocks_spread_over_channels() {
        let d = dram();
        assert_ne!(d.bank_of(BlockAddr::new(0)).channel, d.bank_of(BlockAddr::new(1)).channel);
    }

    #[test]
    fn precharge_closes_rows() {
        let mut d = dram();
        let b = BlockAddr::new(0);
        d.access(b);
        d.precharge_all();
        let (_, o) = d.access(b);
        assert_eq!(o, RowOutcome::Closed);
    }

    #[test]
    fn find_same_bank_block_finds_a_distinct_block() {
        let d = dram();
        let t = BlockAddr::new(5);
        let found = d.find_same_bank_block(t, BlockAddr::new(6));
        assert!(d.same_bank(found, t));
        assert_ne!(found, t);
    }

    #[test]
    fn stats_track_outcomes() {
        let mut d = dram();
        let b = BlockAddr::new(0);
        d.access(b);
        d.access(b);
        assert_eq!(d.stats.get("row_closed"), 1);
        assert_eq!(d.stats.get("row_hit"), 1);
    }
}
