//! Multiply-rotate hashing (the rustc `FxHash` construction) for hot
//! simulator maps.
//!
//! Several per-access structures — the memory controller's write-queue
//! occupancy index, the engine's verification memo — sit on the hottest
//! simulated-read path and are keyed by plain value content with no
//! adversarial collision pressure. The standard library's SipHash
//! costs about as much per lookup as the work those maps exist to
//! avoid, so they use this fast non-cryptographic hasher instead.

use std::collections::{HashMap, HashSet};
use std::hash::Hasher;

/// The rustc `FxHash` word-mixing hasher.
#[derive(Default)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            // Length tag in the top byte keeps short tails of different
            // lengths from colliding after zero-padding.
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            self.add(u64::from_le_bytes(tail) | ((rest.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// [`std::hash::BuildHasher`] for [`FxHasher`].
#[derive(Default, Clone, Debug)]
pub struct BuildFxHasher;

impl std::hash::BuildHasher for BuildFxHasher {
    type Hasher = FxHasher;

    fn build_hasher(&self) -> FxHasher {
        FxHasher::default()
    }
}

/// A `HashMap` using [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, BuildFxHasher>;

/// A `HashSet` using [`FxHasher`].
pub type FxHashSet<T> = HashSet<T, BuildFxHasher>;

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        BuildFxHasher.hash_one(v)
    }

    #[test]
    fn deterministic_and_discriminating() {
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_ne!(hash_of(&42u64), hash_of(&43u64));
        // Same bytes, different split points: the streaming interface
        // must produce one canonical answer per logical value.
        let a: &[u8] = &[1, 2, 3, 4, 5, 6, 7, 8, 9];
        assert_eq!(hash_of(&a), hash_of(&a.to_vec().as_slice()));
    }

    #[test]
    fn short_tails_of_different_lengths_differ() {
        let h = |bytes: &[u8]| {
            let mut hasher = FxHasher::default();
            hasher.write(bytes);
            hasher.finish()
        };
        assert_ne!(h(&[0]), h(&[0, 0]));
        assert_ne!(h(&[7, 0]), h(&[7]));
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<u64, &str> = FxHashMap::default();
        m.insert(9, "nine");
        assert_eq!(m.get(&9), Some(&"nine"));
        let mut s: FxHashSet<u64> = FxHashSet::default();
        assert!(s.insert(9));
        assert!(!s.insert(9));
    }
}
