//! Memory controller: read/write queues, FR-FCFS-style accounting,
//! write merging and drains.
//!
//! Two behaviours matter for MetaLeak-C (§VI-B of the paper) and are
//! modelled explicitly:
//!
//! 1. **Write buffering & merging** — writes sit in the write queue and
//!    writes to a block already queued merge into one service (hiding
//!    counter increments from the attacker's preset bookkeeping);
//! 2. **Bank occupancy** — long metadata operations (re-encryption after
//!    counter overflow) keep banks busy, delaying timed reads to the
//!    same bank (the 2000-cycle bands of Figure 8).

use crate::addr::BlockAddr;
use crate::clock::Cycles;
use crate::config::MemCtlConfig;
use crate::dram::{Dram, RowOutcome};
use crate::fxhash::FxHashMap;
use crate::stats::Counters;
use crate::trace::{MemRegion, NullTracer, TraceEvent, Tracer};
use std::collections::VecDeque;

/// Outcome of a memory-controller read.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReadOutcome {
    /// Total latency as observed by the requester, including any wait
    /// on a busy bank.
    pub latency: Cycles,
    /// Row-buffer outcome (absent when forwarded from the write queue).
    pub row: Option<RowOutcome>,
    /// True if serviced by store-to-load forwarding from the write queue.
    pub forwarded: bool,
    /// Cycles spent waiting for a busy bank before issue.
    pub waited: Cycles,
}

/// Report of a write-queue drain: blocks serviced in order plus the
/// cycle at which the drain finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DrainReport {
    /// Blocks whose writes were serviced, in service order.
    pub serviced: Vec<BlockAddr>,
    /// Timestamp when the last service completed.
    pub finished_at: Cycles,
}

impl DrainReport {
    fn empty(now: Cycles) -> Self {
        DrainReport { serviced: Vec::new(), finished_at: now }
    }
}

/// The memory controller owning the DRAM and the RD/WR queues.
#[derive(Debug, Clone)]
pub struct MemoryController {
    config: MemCtlConfig,
    dram: Dram,
    write_queue: VecDeque<BlockAddr>,
    /// Occupancy index over `write_queue`: how many queued entries
    /// target each block. Keeps `write_pending` and store-to-load
    /// forwarding O(1) instead of scanning the queue on every read.
    /// FxHash-keyed: probed once per read on the hot path.
    write_occupancy: FxHashMap<BlockAddr, usize>,
    /// Busy-until timestamp per bank, indexed by [`Dram::bank_slot_of`]
    /// (`Cycles::ZERO` = idle). A flat vector: every read consults and
    /// updates it, and a `BankId`-keyed hash map cost two SipHash
    /// probes per access.
    bank_busy: Vec<Cycles>,
    /// Event counters (forwards, merges, drains...).
    pub stats: Counters,
}

impl MemoryController {
    /// Creates a controller over `dram`.
    pub fn new(config: MemCtlConfig, dram: Dram) -> Self {
        let bank_busy = vec![Cycles::ZERO; dram.num_banks()];
        MemoryController {
            config,
            dram,
            write_queue: VecDeque::new(),
            write_occupancy: FxHashMap::default(),
            bank_busy,
            stats: Counters::new(),
        }
    }

    /// Immutable access to the DRAM model.
    pub fn dram(&self) -> &Dram {
        &self.dram
    }

    /// Number of writes currently buffered.
    pub fn write_queue_len(&self) -> usize {
        self.write_queue.len()
    }

    /// Whether a write to `block` is currently buffered.
    pub fn write_pending(&self, block: BlockAddr) -> bool {
        self.write_occupancy.contains_key(&block)
    }

    /// Whether the occupancy index exactly mirrors the write queue
    /// (every queued block counted once per entry, no stale keys).
    /// Exposed so tests can assert the two structures never drift.
    pub fn occupancy_consistent(&self) -> bool {
        let mut counts: FxHashMap<BlockAddr, usize> = FxHashMap::default();
        for &b in &self.write_queue {
            *counts.entry(b).or_insert(0) += 1;
        }
        counts == self.write_occupancy
    }

    /// Buffers a write. If the block is already queued the write merges
    /// (no new entry). Reaching the drain watermark triggers a partial
    /// drain whose serviced writes are returned so the caller (the
    /// secure-memory engine) can apply counter updates at service time.
    pub fn enqueue_write(&mut self, block: BlockAddr, now: Cycles) -> DrainReport {
        self.enqueue_write_traced(block, now, &mut NullTracer)
    }

    /// [`MemoryController::enqueue_write`] with instrumentation: emits
    /// [`TraceEvent::WriteMerged`] or [`TraceEvent::WriteEnqueued`], and
    /// a [`TraceEvent::WriteDrain`] if the watermark drain fires.
    pub fn enqueue_write_traced<T: Tracer>(
        &mut self,
        block: BlockAddr,
        now: Cycles,
        tracer: &mut T,
    ) -> DrainReport {
        if self.write_pending(block) {
            self.stats.bump("write_merged");
            if T::ENABLED {
                tracer.record(now, TraceEvent::WriteMerged);
            }
            return DrainReport::empty(now);
        }
        self.write_queue.push_back(block);
        *self.write_occupancy.entry(block).or_insert(0) += 1;
        self.stats.bump("write_enqueued");
        if T::ENABLED {
            tracer.record(
                now,
                TraceEvent::WriteEnqueued { queue_len: self.write_queue.len() as u32 },
            );
        }
        if self.write_queue.len() >= self.config.write_drain_watermark {
            let target = self.config.write_drain_watermark / 2;
            self.drain_to_traced(target, now, tracer)
        } else {
            DrainReport::empty(now)
        }
    }

    /// Drains the entire write queue.
    pub fn flush_writes(&mut self, now: Cycles) -> DrainReport {
        self.drain_to_traced(0, now, &mut NullTracer)
    }

    /// [`MemoryController::flush_writes`] with instrumentation: emits a
    /// [`TraceEvent::WriteDrain`] covering the serviced writes.
    pub fn flush_writes_traced<T: Tracer>(&mut self, now: Cycles, tracer: &mut T) -> DrainReport {
        self.drain_to_traced(0, now, tracer)
    }

    fn drain_to_traced<T: Tracer>(
        &mut self,
        target: usize,
        now: Cycles,
        tracer: &mut T,
    ) -> DrainReport {
        let mut t = now;
        let mut serviced = Vec::new();
        while self.write_queue.len() > target {
            let block = self.write_queue.pop_front().expect("nonempty queue");
            match self.write_occupancy.get_mut(&block) {
                Some(n) if *n > 1 => *n -= 1,
                _ => {
                    self.write_occupancy.remove(&block);
                }
            }
            let (lat, _row) = self.dram.access(block);
            t += lat;
            let slot = self.dram.bank_slot_of(block);
            self.bank_busy[slot] = t;
            serviced.push(block);
            self.stats.bump("write_serviced");
        }
        if !serviced.is_empty() {
            self.stats.bump("write_drains");
            if T::ENABLED {
                tracer.record(
                    now,
                    TraceEvent::WriteDrain {
                        serviced: serviced.len() as u32,
                        cycles: (t - now).as_u64(),
                    },
                );
            }
        }
        DrainReport { serviced, finished_at: t }
    }

    /// Services a read at time `now`. Forwards from the write queue when
    /// possible; otherwise waits for the target bank and accesses DRAM.
    pub fn read(&mut self, block: BlockAddr, now: Cycles) -> ReadOutcome {
        self.read_traced(block, now, MemRegion::Data, &mut NullTracer)
    }

    /// [`MemoryController::read`] with instrumentation: emits one
    /// [`TraceEvent::MemRead`] tagged with the caller-supplied `region`
    /// (data / counter / tree level), carrying the row outcome, wait
    /// cycles and total latency.
    pub fn read_traced<T: Tracer>(
        &mut self,
        block: BlockAddr,
        now: Cycles,
        region: MemRegion,
        tracer: &mut T,
    ) -> ReadOutcome {
        if self.write_pending(block) {
            self.stats.bump("read_forwarded");
            let latency = self.config.queue_penalty.times(2);
            if T::ENABLED {
                tracer.record(
                    now,
                    TraceEvent::MemRead {
                        region,
                        row: None,
                        forwarded: true,
                        waited: 0,
                        cycles: latency.as_u64(),
                    },
                );
            }
            return ReadOutcome { latency, row: None, forwarded: true, waited: Cycles::ZERO };
        }
        let slot = self.dram.bank_slot_of(block);
        let waited = self.bank_busy[slot].saturating_sub(now);
        let (dram_lat, row) = self.dram.access(block);
        // FR-FCFS approximation: pending buffered writes contend for the
        // command bus; charge a small per-8-entries penalty.
        let contention = self.config.queue_penalty.times((self.write_queue.len() / 8) as u64);
        let latency = waited + dram_lat + contention + self.config.queue_penalty;
        self.bank_busy[slot] = now + latency;
        self.stats.bump("read_serviced");
        if T::ENABLED {
            tracer.record(
                now,
                TraceEvent::MemRead {
                    region,
                    row: Some(row),
                    forwarded: false,
                    waited: waited.as_u64(),
                    cycles: latency.as_u64(),
                },
            );
        }
        ReadOutcome { latency, row: Some(row), forwarded: false, waited }
    }

    /// Services a write immediately (bypassing the queue), e.g. during
    /// engine-driven re-encryption bursts. Returns the service latency.
    pub fn write_through(&mut self, block: BlockAddr, now: Cycles) -> Cycles {
        self.write_through_traced(block, now, &mut NullTracer)
    }

    /// [`MemoryController::write_through`] with instrumentation: emits a
    /// [`TraceEvent::WriteThrough`] with the service latency.
    pub fn write_through_traced<T: Tracer>(
        &mut self,
        block: BlockAddr,
        now: Cycles,
        tracer: &mut T,
    ) -> Cycles {
        let (lat, _row) = self.dram.access(block);
        let slot = self.dram.bank_slot_of(block);
        self.bank_busy[slot] = now + lat;
        self.stats.bump("write_through");
        if T::ENABLED {
            tracer.record(now, TraceEvent::WriteThrough { cycles: lat.as_u64() });
        }
        lat
    }

    /// Marks the bank containing `block` busy until `until` (used while
    /// the engine re-encrypts a counter-sharing group).
    pub fn occupy_bank_of(&mut self, block: BlockAddr, until: Cycles) {
        let slot = self.dram.bank_slot_of(block);
        if until > self.bank_busy[slot] {
            self.bank_busy[slot] = until;
        }
    }

    /// When the bank containing `block` becomes free (now if idle).
    pub fn bank_free_at(&self, block: BlockAddr) -> Cycles {
        self.bank_busy[self.dram.bank_slot_of(block)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DramConfig;

    fn mc() -> MemoryController {
        MemoryController::new(MemCtlConfig::default(), Dram::new(DramConfig::default()))
    }

    #[test]
    fn writes_buffer_until_watermark() {
        let mut m = mc();
        for i in 0..47u64 {
            let r = m.enqueue_write(BlockAddr::new(i), Cycles::ZERO);
            assert!(r.serviced.is_empty(), "no drain before watermark (i={i})");
        }
        let r = m.enqueue_write(BlockAddr::new(47), Cycles::ZERO);
        assert_eq!(m.write_queue_len(), 24, "drains to half the watermark");
        assert_eq!(r.serviced.len(), 24);
        assert!(r.finished_at > Cycles::ZERO);
        assert!(m.occupancy_consistent(), "occupancy index must survive a partial drain");
    }

    #[test]
    fn duplicate_writes_merge() {
        let mut m = mc();
        m.enqueue_write(BlockAddr::new(1), Cycles::ZERO);
        m.enqueue_write(BlockAddr::new(1), Cycles::ZERO);
        assert_eq!(m.write_queue_len(), 1);
        assert_eq!(m.stats.get("write_merged"), 1);
        assert!(m.occupancy_consistent(), "merge must not double-count the block");
    }

    #[test]
    fn flush_services_everything_in_order() {
        let mut m = mc();
        for i in 0..5u64 {
            m.enqueue_write(BlockAddr::new(i), Cycles::ZERO);
        }
        let r = m.flush_writes(Cycles::ZERO);
        assert_eq!(r.serviced, (0..5).map(BlockAddr::new).collect::<Vec<_>>());
        assert_eq!(m.write_queue_len(), 0);
        assert!(m.occupancy_consistent(), "flush must leave an empty occupancy index");
        assert!(!m.write_pending(BlockAddr::new(0)), "no stale keys after flush");
    }

    #[test]
    fn read_forwards_from_write_queue() {
        let mut m = mc();
        m.enqueue_write(BlockAddr::new(9), Cycles::ZERO);
        assert!(m.write_pending(BlockAddr::new(9)));
        let r = m.read(BlockAddr::new(9), Cycles::ZERO);
        assert!(r.forwarded);
        assert!(r.latency.as_u64() < 40, "forwarding must beat DRAM");
    }

    #[test]
    fn occupancy_index_tracks_queue_through_mixed_traffic() {
        let mut m = mc();
        let mut rounds = 0u64;
        // Interleave enqueues (with duplicates), reads and flushes and
        // check the index mirrors the queue after every step.
        for i in 0..200u64 {
            m.enqueue_write(BlockAddr::new(i % 13), Cycles::new(i));
            assert!(m.occupancy_consistent(), "after enqueue {i}");
            if i % 7 == 0 {
                m.read(BlockAddr::new(i % 13), Cycles::new(i));
                assert!(m.occupancy_consistent(), "after read {i}");
            }
            if i % 31 == 0 {
                m.flush_writes(Cycles::new(i));
                assert!(m.occupancy_consistent(), "after flush {i}");
                rounds += 1;
            }
        }
        assert!(rounds > 0);
        let queued = m.write_queue_len();
        assert!((0..13).filter(|&b| m.write_pending(BlockAddr::new(b))).count() <= queued);
    }

    #[test]
    fn read_to_busy_bank_waits() {
        let mut m = mc();
        let b = BlockAddr::new(4);
        m.occupy_bank_of(b, Cycles::new(2000));
        let r = m.read(b, Cycles::new(100));
        assert_eq!(r.waited.as_u64(), 1900);
        assert!(r.latency.as_u64() >= 1900);
        // A read to a different bank does not wait.
        let other = BlockAddr::new(5);
        let r2 = m.read(other, Cycles::new(100));
        assert_eq!(r2.waited, Cycles::ZERO);
    }

    #[test]
    fn occupy_never_shrinks_busy_window() {
        let mut m = mc();
        let b = BlockAddr::new(0);
        m.occupy_bank_of(b, Cycles::new(500));
        m.occupy_bank_of(b, Cycles::new(100));
        assert_eq!(m.bank_free_at(b), Cycles::new(500));
    }

    #[test]
    fn write_through_occupies_bank() {
        let mut m = mc();
        let b = BlockAddr::new(2);
        let lat = m.write_through(b, Cycles::ZERO);
        assert!(lat.as_u64() > 0);
        assert!(m.bank_free_at(b) > Cycles::ZERO);
    }

    #[test]
    fn traced_read_and_writes_emit_matching_events() {
        use crate::trace::{MemRegion, RingTracer, TraceEvent};
        let mut m = mc();
        let mut t = RingTracer::new(256);
        let r = m.read_traced(BlockAddr::new(3), Cycles::ZERO, MemRegion::Counter, &mut t);
        m.enqueue_write_traced(BlockAddr::new(3), Cycles::ZERO, &mut t);
        m.enqueue_write_traced(BlockAddr::new(3), Cycles::ZERO, &mut t); // merge
        let fwd = m.read_traced(BlockAddr::new(3), Cycles::ZERO, MemRegion::Data, &mut t);
        m.flush_writes_traced(Cycles::ZERO, &mut t);
        assert!(fwd.forwarded);
        let log = t.into_log();
        assert_eq!(log.counters.get("mem_read"), 2);
        assert_eq!(log.counters.get("wq_enqueue"), 1);
        assert_eq!(log.counters.get("wq_merge"), 1);
        assert_eq!(log.counters.get("wq_drain"), 1);
        match log.events[0].event {
            TraceEvent::MemRead { region, forwarded, cycles, .. } => {
                assert_eq!(region, MemRegion::Counter);
                assert!(!forwarded);
                assert_eq!(cycles, r.latency.as_u64());
            }
            ref other => panic!("unexpected first event {other:?}"),
        }
    }

    #[test]
    fn queued_writes_slow_reads_via_contention() {
        let mut fast = mc();
        let quiet = fast.read(BlockAddr::new(1000), Cycles::ZERO).latency;
        let mut busy = mc();
        for i in 0..40u64 {
            busy.enqueue_write(BlockAddr::new(i * 2 + 1), Cycles::ZERO);
        }
        // Pick a block in an untouched bank and row to isolate contention.
        let loaded = busy.read(BlockAddr::new(1000), Cycles::ZERO).latency;
        assert!(loaded > quiet, "loaded {loaded} vs quiet {quiet}");
    }
}
