//! Structured, deterministic event tracing with zero cost when disabled.
//!
//! The simulator's components accept a [`Tracer`] type parameter. The
//! default, [`NullTracer`], has `ENABLED = false` and an empty inline
//! `record`, so every instrumentation site compiles down to nothing —
//! monomorphization removes both the branch and the event construction.
//! Swapping in a [`RingTracer`] turns the same build into a cycle-level
//! probe: every hot-path event (cache lookup, DRAM read, tree-walk
//! level, crypto op, write-queue activity, interference) is timestamped
//! with the simulated clock and appended to a bounded ring buffer,
//! alongside a typed counter and latency-histogram registry.
//!
//! Determinism: events carry only simulated time ([`Cycles`]) and are
//! recorded in program order by the single-threaded per-trial
//! simulation, so a traced trial produces an identical event stream
//! regardless of wall-clock scheduling or harness thread count.
//!
//! ```
//! use metaleak_sim::clock::Cycles;
//! use metaleak_sim::trace::{RingTracer, TraceEvent, Tracer};
//!
//! let mut t = RingTracer::new(16);
//! t.record(Cycles::new(5), TraceEvent::WriteDone { cycles: 40 });
//! let log = t.into_log();
//! assert_eq!(log.events.len(), 1);
//! assert_eq!(log.counters.get("write_done"), 1);
//! ```

use crate::clock::Cycles;
use crate::dram::RowOutcome;
use crate::stats::{Counters, LatencyHistogram};
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;

/// Default ring capacity for [`RingTracer::with_default_capacity`].
pub const DEFAULT_RING_CAPACITY: usize = 1 << 16;

/// Bucket width (cycles) of the per-category latency histograms kept by
/// [`RingTracer`].
pub const TRACE_HIST_BUCKET_WIDTH: u64 = 10;

/// Which memory region a DRAM access targeted. Metadata regions let the
/// attribution pass split DRAM time between data, counters and
/// individual integrity-tree levels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemRegion {
    /// A protected-data cache block.
    Data,
    /// A counter block (tree leaf storage).
    Counter,
    /// An integrity-tree node at `level` (1 = leaf parents' level in
    /// the engine's numbering; see `metaleak-meta`).
    TreeNode {
        /// Tree level of the node being fetched.
        level: u8,
    },
}

/// Which MAC was verified in a [`TraceEvent::MacCheck`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacScope {
    /// The per-block data MAC checked after decryption.
    Data,
    /// The MAC covering a counter block, checked after a tree walk.
    CounterBlock,
}

/// Which cryptographic primitive a [`TraceEvent::Crypto`] ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoKind {
    /// AES counter-mode pad generation (decryption OTP).
    Pad,
    /// Carter–Wegman MAC computation/verification.
    Mac,
    /// Integrity-tree node hashing.
    Hash,
}

/// How a completed read was served; mirrors the engine's `AccessPath`
/// without depending on the engine crate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PathClass {
    /// Served by an on-core cache at this level (1–3).
    CacheHit(u8),
    /// Forwarded from the memory controller's write queue.
    StoreForward,
    /// DRAM read whose counter was resident in the counter cache.
    CounterHit,
    /// DRAM read requiring an integrity-tree walk.
    TreeWalk {
        /// Number of tree nodes fetched from DRAM.
        loaded: u8,
        /// Whether the walk went all the way to the root.
        to_root: bool,
    },
}

/// One timestamped simulation event.
///
/// Duration-bearing variants carry the cycles the modeled step
/// contributed to the access latency; instant variants (e.g.
/// [`TraceEvent::WriteMerged`]) mark state transitions. The component
/// events emitted during a read are constructed to exactly partition
/// the matching [`TraceEvent::ReadDone`] latency, which is what lets
/// `tracescan` attribute 100% of victim latency to concrete hardware.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A lookup at one cache level of the on-core hierarchy.
    CacheLookup {
        /// Cache level consulted (1–3).
        level: u8,
        /// Whether the block was resident.
        hit: bool,
        /// Set index the block maps to at this level.
        set: u32,
        /// Lookup latency charged at this level.
        cycles: u64,
    },
    /// A memory-controller read (DRAM access or store-forward).
    MemRead {
        /// Region class of the target block.
        region: MemRegion,
        /// DRAM row outcome (`None` when forwarded from the write queue).
        row: Option<RowOutcome>,
        /// Whether the read was served from the write queue.
        forwarded: bool,
        /// Cycles stalled waiting for a busy bank.
        waited: u64,
        /// Total latency charged for the read.
        cycles: u64,
    },
    /// MEE pipeline overhead charged on metadata reads.
    Mee {
        /// Number of metadata reads the overhead covers.
        reads: u32,
        /// Total pipeline cycles charged.
        cycles: u64,
    },
    /// A write entered the memory controller's write queue.
    WriteEnqueued {
        /// Queue occupancy after the enqueue.
        queue_len: u32,
    },
    /// A write coalesced with a pending queue entry.
    WriteMerged,
    /// The write queue drained to its low watermark.
    WriteDrain {
        /// Number of writes serviced by the drain.
        serviced: u32,
        /// Busy cycles consumed by the drain.
        cycles: u64,
    },
    /// A synchronous (non-queued) write to DRAM.
    WriteThrough {
        /// Latency of the DRAM write.
        cycles: u64,
    },
    /// One level of an integrity-tree walk was visited.
    TreeWalkLevel {
        /// Tree level visited.
        level: u8,
        /// True if the node missed the tree cache and was fetched.
        loaded: bool,
    },
    /// A MAC verification finished.
    MacCheck {
        /// Which MAC was checked.
        scope: MacScope,
        /// Whether verification succeeded.
        ok: bool,
    },
    /// A crypto-engine operation completed.
    Crypto {
        /// Primitive that ran.
        kind: CryptoKind,
        /// Number of primitive invocations batched in this event.
        ops: u32,
        /// Total cycles charged.
        cycles: u64,
    },
    /// A minor counter overflowed, forcing re-encryption.
    CounterOverflow {
        /// Whether the overflow escalated to a full key rotation.
        rekey: bool,
        /// Blocks re-encrypted in the overflow group.
        group_blocks: u64,
        /// Bank-busy cycles the re-encryption occupied.
        busy_cycles: u64,
    },
    /// A tree-node counter overflowed, resetting a subtree.
    TreeOverflow {
        /// Nodes rehashed/reset by the overflow.
        nodes_reset: u64,
        /// Bank-busy cycles the reset occupied.
        busy_cycles: u64,
    },
    /// The interference layer perturbed this access.
    Interference {
        /// Extra latency added to the access.
        extra_cycles: u64,
        /// Scheduling-gap cycles advanced on the clock (not part of
        /// the access latency).
        gap_cycles: u64,
    },
    /// An attack primitive issued a timed probe.
    ProbeIssued {
        /// Block index probed.
        block: u64,
    },
    /// An attack primitive classified a timing sample.
    SampleClassified {
        /// Decoded class (e.g. covert-channel symbol).
        class: u64,
        /// Raw latency value that was classified.
        value: u64,
    },
    /// A secure-memory read completed.
    ReadDone {
        /// Path the read took.
        path: PathClass,
        /// End-to-end latency returned to the core.
        cycles: u64,
    },
    /// A secure-memory write completed.
    WriteDone {
        /// End-to-end latency charged for the write.
        cycles: u64,
    },
}

impl TraceEvent {
    /// Stable snake_case name of the event kind (counter key and
    /// export `ev` field).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::CacheLookup { .. } => "cache_lookup",
            TraceEvent::MemRead { .. } => "mem_read",
            TraceEvent::Mee { .. } => "mee",
            TraceEvent::WriteEnqueued { .. } => "wq_enqueue",
            TraceEvent::WriteMerged => "wq_merge",
            TraceEvent::WriteDrain { .. } => "wq_drain",
            TraceEvent::WriteThrough { .. } => "write_through",
            TraceEvent::TreeWalkLevel { .. } => "tree_walk_level",
            TraceEvent::MacCheck { .. } => "mac_check",
            TraceEvent::Crypto { .. } => "crypto",
            TraceEvent::CounterOverflow { .. } => "counter_overflow",
            TraceEvent::TreeOverflow { .. } => "tree_overflow",
            TraceEvent::Interference { .. } => "interference",
            TraceEvent::ProbeIssued { .. } => "probe",
            TraceEvent::SampleClassified { .. } => "sample",
            TraceEvent::ReadDone { .. } => "read_done",
            TraceEvent::WriteDone { .. } => "write_done",
        }
    }

    /// Duration carried by the event, if it is duration-bearing.
    /// Background work ([`TraceEvent::WriteDrain`], overflow busy time)
    /// reports its busy cycles here even though those cycles are not
    /// part of any single access latency.
    pub fn cycles(&self) -> Option<u64> {
        match *self {
            TraceEvent::CacheLookup { cycles, .. }
            | TraceEvent::MemRead { cycles, .. }
            | TraceEvent::Mee { cycles, .. }
            | TraceEvent::WriteDrain { cycles, .. }
            | TraceEvent::WriteThrough { cycles }
            | TraceEvent::Crypto { cycles, .. }
            | TraceEvent::ReadDone { cycles, .. }
            | TraceEvent::WriteDone { cycles } => Some(cycles),
            TraceEvent::CounterOverflow { busy_cycles, .. }
            | TraceEvent::TreeOverflow { busy_cycles, .. } => Some(busy_cycles),
            TraceEvent::Interference { extra_cycles, .. } => Some(extra_cycles),
            _ => None,
        }
    }
}

/// A recorded event with its sequence number and simulated timestamp.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceRecord {
    /// Monotonic per-tracer sequence number (0-based, counts drops).
    pub seq: u64,
    /// Simulated time at which the event was recorded.
    pub at: Cycles,
    /// The event payload.
    pub event: TraceEvent,
}

/// Sink for simulation events, resolved at compile time.
///
/// Instrumentation sites are written `if T::ENABLED { tracer.record(..) }`;
/// with [`NullTracer`] the constant folds to `false` and the whole site
/// — including event construction — is eliminated by monomorphization.
pub trait Tracer {
    /// Whether instrumentation sites should emit events at all.
    const ENABLED: bool;
    /// Records one event at simulated time `at`.
    fn record(&mut self, at: Cycles, event: TraceEvent);
    /// Freezes everything recorded so far into an immutable shared
    /// segment, so that cloning the tracer (a snapshot fork) shares the
    /// warmup history instead of copying it. Recording continues into a
    /// fresh private segment; [`RingTracer::into_log`] merges the two
    /// back into one continuous stream. No-op by default.
    fn seal(&mut self) {}
}

/// The zero-cost default tracer: records nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullTracer;

impl Tracer for NullTracer {
    const ENABLED: bool = false;
    #[inline(always)]
    fn record(&mut self, _at: Cycles, _event: TraceEvent) {}
}

/// A bounded-ring tracer with a typed counter/histogram registry.
///
/// Keeps the most recent `capacity` events (older events are dropped
/// and counted, never silently lost) and aggregates every event into
/// per-kind [`Counters`] and, for duration-bearing events, per-kind
/// [`LatencyHistogram`]s.
/// A tracer that has been [`Tracer::seal`]ed (at snapshot time) keeps
/// its history in an immutable [`Arc`]'d segment: cloning the tracer
/// for a fork is then an O(1) pointer bump, every fork shares one copy
/// of the warmup events, and each fork appends privately. `into_log`
/// splices base and private segments back into the stream one
/// continuous ring would have retained — byte-identically, drops
/// included.
#[derive(Debug, Clone)]
pub struct RingTracer {
    capacity: usize,
    next_seq: u64,
    /// Sealed history shared by every clone (fork) of this tracer.
    base: Option<Arc<TraceLog>>,
    ring: VecDeque<TraceRecord>,
    counters: Counters,
    histograms: BTreeMap<&'static str, LatencyHistogram>,
}

impl RingTracer {
    /// Creates a tracer retaining at most `capacity` events
    /// (`capacity` must be nonzero).
    ///
    /// # Panics
    /// Panics if `capacity == 0`.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "ring capacity must be nonzero");
        RingTracer {
            capacity,
            next_seq: 0,
            base: None,
            ring: VecDeque::new(),
            counters: Counters::new(),
            histograms: BTreeMap::new(),
        }
    }

    /// Creates a tracer with [`DEFAULT_RING_CAPACITY`].
    pub fn with_default_capacity() -> Self {
        Self::new(DEFAULT_RING_CAPACITY)
    }

    /// Number of events currently retained (sealed base + private
    /// segment, capped at the ring capacity).
    pub fn len(&self) -> usize {
        let base = self.base.as_ref().map(|b| b.events.len()).unwrap_or(0);
        (base + self.ring.len()).min(self.capacity)
    }

    /// Whether no events have been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events dropped (no longer retained) so far.
    pub fn dropped(&self) -> u64 {
        self.next_seq - self.len() as u64
    }

    /// The aggregated per-kind counters of the private (post-seal)
    /// segment; [`RingTracer::into_log`] folds the sealed base back in.
    pub fn counters(&self) -> &Counters {
        &self.counters
    }

    /// The private segment's latency histogram for an event kind, if
    /// any duration-bearing event of that kind was recorded post-seal.
    pub fn histogram(&self, kind: &str) -> Option<&LatencyHistogram> {
        self.histograms.get(kind)
    }

    /// Consumes the tracer into an immutable [`TraceLog`] snapshot,
    /// splicing the sealed base segment (if any) and the private
    /// segment into the exact stream one continuous ring would retain:
    /// the last `capacity` events, with earlier ones counted as
    /// dropped, and counters/histograms aggregated across the seal.
    pub fn into_log(self) -> TraceLog {
        let mut counters = self.counters;
        let mut histograms = self.histograms;
        let mut events: Vec<TraceRecord> = match self.base {
            Some(base) => {
                counters.merge(&base.counters);
                for (kind, hist) in &base.histograms {
                    histograms
                        .entry(kind)
                        .and_modify(|h| h.merge(hist))
                        .or_insert_with(|| hist.clone());
                }
                base.events.iter().copied().chain(self.ring).collect()
            }
            None => self.ring.into_iter().collect(),
        };
        if events.len() > self.capacity {
            events.drain(..events.len() - self.capacity);
        }
        TraceLog { dropped: self.next_seq - events.len() as u64, events, counters, histograms }
    }
}

impl Tracer for RingTracer {
    const ENABLED: bool = true;

    fn record(&mut self, at: Cycles, event: TraceEvent) {
        let name = event.name();
        self.counters.bump(name);
        if let Some(cycles) = event.cycles() {
            self.histograms
                .entry(name)
                .or_insert_with(|| LatencyHistogram::new(TRACE_HIST_BUCKET_WIDTH))
                .record(Cycles::new(cycles));
        }
        // Bound only the private segment: anything older than the last
        // `capacity` private events can never appear in the merged
        // window `into_log` retains, and the sealed base is immutable.
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(TraceRecord { seq: self.next_seq, at, event });
        self.next_seq += 1;
    }

    fn seal(&mut self) {
        // Fold everything recorded so far — including any previously
        // sealed segment — into one immutable, cheaply shareable
        // segment; recording continues privately with the sequence
        // numbering intact.
        let next_seq = self.next_seq;
        let sealed = std::mem::replace(self, RingTracer::new(self.capacity));
        self.base = Some(Arc::new(sealed.into_log()));
        self.next_seq = next_seq;
    }
}

/// Immutable snapshot of a finished [`RingTracer`].
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// Retained events in recording order.
    pub events: Vec<TraceRecord>,
    /// Events dropped because the ring was full.
    pub dropped: u64,
    /// Per-kind event counts (count drops too).
    pub counters: Counters,
    /// Per-kind latency histograms for duration-bearing events.
    pub histograms: BTreeMap<&'static str, LatencyHistogram>,
}

impl TraceLog {
    /// Total events ever recorded (retained + dropped).
    pub fn recorded(&self) -> u64 {
        self.events.len() as u64 + self.dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(cycles: u64) -> TraceEvent {
        TraceEvent::WriteDone { cycles }
    }

    #[test]
    fn null_tracer_is_disabled() {
        // Compile-time: the null tracer's gate is the constant `false`.
        const _: () = assert!(!NullTracer::ENABLED);
        let mut t = NullTracer;
        t.record(Cycles::new(1), ev(10));
    }

    #[test]
    fn ring_keeps_most_recent_and_counts_drops() {
        let mut t = RingTracer::new(4);
        for i in 0..10 {
            t.record(Cycles::new(i), ev(i));
        }
        assert_eq!(t.len(), 4);
        assert_eq!(t.dropped(), 6);
        let log = t.into_log();
        assert_eq!(log.recorded(), 10);
        let seqs: Vec<u64> = log.events.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8, 9]);
        // Counters aggregate across drops.
        assert_eq!(log.counters.get("write_done"), 10);
    }

    #[test]
    fn histogram_registry_tracks_duration_events() {
        let mut t = RingTracer::new(16);
        t.record(Cycles::new(0), ev(5));
        t.record(Cycles::new(1), ev(25));
        t.record(
            Cycles::new(2),
            TraceEvent::WriteMerged, // instant: no histogram entry
        );
        let h = t.histogram("write_done").expect("histogram exists");
        assert_eq!(h.count(), 2);
        assert!(t.histogram("wq_merge").is_none());
        assert_eq!(t.counters().get("wq_merge"), 1);
    }

    #[test]
    fn event_names_are_stable_and_cycles_extracted() {
        let e = TraceEvent::MemRead {
            region: MemRegion::TreeNode { level: 2 },
            row: Some(RowOutcome::Hit),
            forwarded: false,
            waited: 3,
            cycles: 40,
        };
        assert_eq!(e.name(), "mem_read");
        assert_eq!(e.cycles(), Some(40));
        assert_eq!(TraceEvent::WriteMerged.cycles(), None);
        assert_eq!(TraceEvent::Interference { extra_cycles: 7, gap_cycles: 100 }.cycles(), Some(7));
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_ring_panics() {
        RingTracer::new(0);
    }

    /// Records `warm` warmup events, then seals/forks (or not), then
    /// records `post` more, and returns the final log.
    fn run(capacity: usize, warm: u64, post: u64, sealed: bool) -> TraceLog {
        let mut t = RingTracer::new(capacity);
        for i in 0..warm {
            t.record(Cycles::new(i), ev(i));
        }
        let mut t = if sealed {
            t.seal();
            t.clone() // the fork
        } else {
            t
        };
        for i in 0..post {
            t.record(Cycles::new(warm + i), ev(warm + i));
        }
        t.into_log()
    }

    #[test]
    fn sealed_fork_matches_a_continuous_ring_exactly() {
        // Every drop regime: no drops, drops in warmup only, drops in
        // the trial only, drops in both, and an empty trial segment.
        for (warm, post) in [(2, 3), (10, 2), (2, 10), (9, 9), (5, 0), (0, 4)] {
            let plain = run(6, warm, post, false);
            let forked = run(6, warm, post, true);
            assert_eq!(plain.events, forked.events, "warm={warm} post={post}");
            assert_eq!(plain.dropped, forked.dropped, "warm={warm} post={post}");
            assert_eq!(plain.recorded(), forked.recorded());
            assert_eq!(
                plain.counters.get("write_done"),
                forked.counters.get("write_done"),
                "counters must aggregate across the seal"
            );
            assert_eq!(
                plain.histograms.get("write_done").map(|h| h.count()),
                forked.histograms.get("write_done").map(|h| h.count()),
            );
        }
    }

    #[test]
    fn sealed_clone_is_cheap_and_isolated() {
        let mut t = RingTracer::new(1 << 10);
        for i in 0..100 {
            t.record(Cycles::new(i), ev(i));
        }
        t.seal();
        let mut fork_a = t.clone();
        let fork_b = t.clone();
        assert!(fork_a.ring.is_empty(), "forks start with an empty private ring");
        fork_a.record(Cycles::new(200), ev(200));
        assert_eq!(fork_b.len(), 100, "sibling unaffected");
        let a = fork_a.into_log();
        let b = fork_b.into_log();
        assert_eq!(a.recorded(), 101);
        assert_eq!(b.recorded(), 100);
        assert_eq!(a.events[100].seq, 100, "sequence numbering continues across the seal");
    }

    #[test]
    fn double_seal_folds_cumulatively() {
        let mut t = RingTracer::new(8);
        t.record(Cycles::new(0), ev(0));
        t.seal();
        t.record(Cycles::new(1), ev(1));
        t.seal();
        t.record(Cycles::new(2), ev(2));
        let log = t.into_log();
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.events.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(log.counters.get("write_done"), 3);
    }
}
