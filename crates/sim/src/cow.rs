//! Persistent (structurally shared) containers for snapshot/fork.
//!
//! The experiment harness forks one warmed simulator state into
//! thousands of trials that each dirty only a handful of blocks,
//! counters and tree nodes. Deep-copying the whole image per fork made
//! `fork()` O(state); these containers make it O(1): state lives in
//! chunked arrays behind [`Arc`] spines, a clone is two reference-count
//! bumps, and the first mutation after a fork path-copies the spine
//! once and then only the chunks it actually touches
//! ([`Arc::make_mut`]). While a container is unshared (no live fork),
//! `make_mut` never copies, so the pre-snapshot warmup pays nothing.
//!
//! Two shapes cover every large state component:
//!
//! * [`CowVec`] — a dense fixed-length array (integrity-tree levels,
//!   cache set arrays).
//! * [`CowMap`] — a sparse map over a bounded `u64` key space (lazily
//!   materialized ciphertext/MAC/counter stores, where absent means
//!   "never touched"). Unlike a hash map its iteration order is the
//!   key order, so replacing one with the other cannot perturb any
//!   artifact bytes.
//!
//! Chunk size is chosen near `sqrt(capacity)` so both the spine copy
//! (paid once per forked writer) and each chunk copy (paid per dirtied
//! chunk) stay O(√n) rather than O(n).

use std::sync::Arc;

/// Picks a chunk size (log2) near `sqrt(capacity)`, clamped so tiny
/// containers stay a single chunk and huge ones keep chunks cacheable.
fn balanced_chunk_pow(capacity: usize) -> u32 {
    let bits = usize::BITS - capacity.next_power_of_two().leading_zeros();
    (bits / 2).clamp(4, 12)
}

/// A dense fixed-length array with O(1) clone and chunk-granular
/// copy-on-write.
///
/// ```
/// use metaleak_sim::cow::CowVec;
/// let mut a: CowVec<u64> = CowVec::new(1000, 0);
/// *a.get_mut(7) = 99;
/// let mut b = a.clone(); // O(1): shares every chunk
/// *b.get_mut(7) = 11;    // copies only chunk 0 of `b`
/// assert_eq!((*a.get(7), *b.get(7)), (99, 11));
/// ```
#[derive(Debug, Clone)]
pub struct CowVec<T> {
    chunk_pow: u32,
    len: usize,
    spine: Arc<Vec<Arc<Vec<T>>>>,
}

impl<T: Clone> CowVec<T> {
    /// Creates a vector of `len` clones of `fill`.
    pub fn new(len: usize, fill: T) -> Self {
        Self::from_fn(len, |_| fill.clone())
    }

    /// Creates a vector of `len` elements produced by `f(index)`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> T) -> Self {
        let chunk_pow = balanced_chunk_pow(len);
        let chunk = 1usize << chunk_pow;
        let mut spine = Vec::with_capacity(len.div_ceil(chunk));
        let mut start = 0;
        while start < len {
            let end = (start + chunk).min(len);
            spine.push(Arc::new((start..end).map(&mut f).collect()));
            start = end;
        }
        CowVec { chunk_pow, len, spine: Arc::new(spine) }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the vector is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Shared reference to element `i`. Panics if out of bounds.
    pub fn get(&self, i: usize) -> &T {
        assert!(i < self.len, "CowVec index {i} out of bounds ({})", self.len);
        &self.spine[i >> self.chunk_pow][i & ((1 << self.chunk_pow) - 1)]
    }

    /// Mutable reference to element `i`, copying the spine and the
    /// containing chunk first if they are shared with a fork. Panics if
    /// out of bounds.
    pub fn get_mut(&mut self, i: usize) -> &mut T {
        assert!(i < self.len, "CowVec index {i} out of bounds ({})", self.len);
        let spine = Arc::make_mut(&mut self.spine);
        let chunk = Arc::make_mut(&mut spine[i >> self.chunk_pow]);
        &mut chunk[i & ((1 << self.chunk_pow) - 1)]
    }

    /// Iterates the elements in index order.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        self.spine.iter().flat_map(|c| c.iter())
    }

    /// Forces every chunk private (a full materialization), emulating
    /// the cost of a deep copy. Used by the `fork_cost` benchmark to
    /// measure what the pre-CoW `fork()` paid.
    pub fn unshare(&mut self) {
        let spine = Arc::make_mut(&mut self.spine);
        for chunk in spine.iter_mut() {
            Arc::make_mut(chunk);
        }
    }

    /// Number of chunks currently shared with another clone (diagnostic
    /// for sharing tests and the fork-cost report). A chunk is shared
    /// either directly or through a still-shared spine.
    pub fn shared_chunks(&self) -> usize {
        if Arc::strong_count(&self.spine) > 1 {
            return self.spine.len();
        }
        self.spine.iter().filter(|c| Arc::strong_count(c) > 1).count()
    }
}

/// A sparse map over the bounded key space `0..capacity`, with O(1)
/// clone and chunk-granular copy-on-write.
///
/// Absent keys are "never materialized" (the lazy-zero convention the
/// engine's ciphertext/MAC/counter stores rely on); memory stays
/// proportional to the touched chunks, not to `capacity`. Iteration
/// ([`CowMap::keys`], [`CowMap::iter`]) is in ascending key order, so
/// it is deterministic across runs, threads and forks.
///
/// ```
/// use metaleak_sim::cow::CowMap;
/// let mut m: CowMap<u64> = CowMap::new(1 << 20);
/// m.insert(12, 34);
/// let f = m.clone(); // O(1)
/// assert_eq!(f.get(12), Some(&34));
/// assert_eq!(m.keys().collect::<Vec<_>>(), vec![12]);
/// ```
#[derive(Debug, Clone)]
pub struct CowMap<T> {
    chunk_pow: u32,
    capacity: u64,
    len: usize,
    spine: Arc<Vec<MapChunk<T>>>,
}

/// One spine slot of a [`CowMap`]: `None` until any key in the chunk's
/// range is first written (the lazy-zero convention), then a shared,
/// copy-on-write chunk of optional slots.
type MapChunk<T> = Option<Arc<Vec<Option<T>>>>;

impl<T: Clone> CowMap<T> {
    /// Creates an empty map over keys `0..capacity`.
    pub fn new(capacity: u64) -> Self {
        let chunk_pow = balanced_chunk_pow(capacity as usize);
        let chunks = (capacity as usize).div_ceil(1 << chunk_pow);
        CowMap { chunk_pow, capacity, len: 0, spine: Arc::new(vec![None; chunks]) }
    }

    /// Number of present entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no key is present.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn split(&self, key: u64) -> (usize, usize) {
        assert!(key < self.capacity, "CowMap key {key} out of bounds ({})", self.capacity);
        ((key >> self.chunk_pow) as usize, (key & ((1 << self.chunk_pow) - 1)) as usize)
    }

    /// Shared reference to the value at `key`, if present. Panics if
    /// `key >= capacity`.
    pub fn get(&self, key: u64) -> Option<&T> {
        let (c, o) = self.split(key);
        self.spine[c].as_ref()?[o].as_ref()
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Mutable reference to the value at `key`, if present (copy-on-
    /// write on the spine and containing chunk).
    pub fn get_mut(&mut self, key: u64) -> Option<&mut T> {
        if !self.contains_key(key) {
            return None;
        }
        let (c, o) = self.split(key);
        let spine = Arc::make_mut(&mut self.spine);
        let chunk = Arc::make_mut(spine[c].as_mut().expect("presence checked above"));
        chunk[o].as_mut()
    }

    /// Mutable slot for `key`, materializing its chunk if needed.
    fn slot_mut(&mut self, key: u64) -> &mut Option<T> {
        let (c, o) = self.split(key);
        let spine = Arc::make_mut(&mut self.spine);
        let chunk = spine[c].get_or_insert_with(|| Arc::new(vec![None; 1 << self.chunk_pow]));
        &mut Arc::make_mut(chunk)[o]
    }

    /// Inserts `value` at `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, value: T) -> Option<T> {
        let slot = self.slot_mut(key);
        let old = slot.replace(value);
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Removes `key`, returning its value if it was present.
    pub fn remove(&mut self, key: u64) -> Option<T> {
        if !self.contains_key(key) {
            return None;
        }
        let old = self.slot_mut(key).take();
        self.len -= 1;
        old
    }

    /// Mutable reference to the value at `key`, inserting `default()`
    /// first if absent (the `entry(..).or_insert_with(..)` shape).
    pub fn get_or_insert_with(&mut self, key: u64, default: impl FnOnce() -> T) -> &mut T {
        if !self.contains_key(key) {
            self.insert(key, default());
        }
        self.get_mut(key).expect("just inserted")
    }

    /// Removes every entry. O(chunks), not O(capacity).
    pub fn clear(&mut self) {
        let chunks = self.spine.len();
        self.spine = Arc::new(vec![None; chunks]);
        self.len = 0;
    }

    /// Present keys in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(k, _)| k)
    }

    /// Present `(key, value)` pairs in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let chunk = 1u64 << self.chunk_pow;
        self.spine.iter().enumerate().flat_map(move |(c, slot)| {
            slot.iter().flat_map(move |arc| {
                arc.iter()
                    .enumerate()
                    .filter_map(move |(o, v)| v.as_ref().map(|v| (c as u64 * chunk + o as u64, v)))
            })
        })
    }

    /// Forces every materialized chunk private (a full
    /// materialization), emulating the cost of a deep copy for the
    /// `fork_cost` benchmark.
    pub fn unshare(&mut self) {
        let spine = Arc::make_mut(&mut self.spine);
        for chunk in spine.iter_mut().flatten() {
            Arc::make_mut(chunk);
        }
    }

    /// Number of materialized chunks currently shared with another
    /// clone (diagnostic). A chunk is shared either directly or
    /// through a still-shared spine.
    pub fn shared_chunks(&self) -> usize {
        if Arc::strong_count(&self.spine) > 1 {
            return self.spine.iter().flatten().count();
        }
        self.spine.iter().flatten().filter(|c| Arc::strong_count(c) > 1).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cowvec_reads_back_from_fn() {
        let v = CowVec::from_fn(100, |i| i * 2);
        assert_eq!(v.len(), 100);
        assert_eq!(*v.get(0), 0);
        assert_eq!(*v.get(99), 198);
        assert_eq!(v.iter().copied().sum::<usize>(), 99 * 100);
    }

    #[test]
    fn cowvec_clone_shares_until_write() {
        let mut a = CowVec::new(1000, 7u64);
        let b = a.clone();
        assert!(a.shared_chunks() > 0, "clone must share every chunk");
        *a.get_mut(500) = 1;
        assert_eq!(*b.get(500), 7, "sibling unaffected by write");
        assert_eq!(*a.get(500), 1);
        assert!(a.shared_chunks() < b.spine.len(), "only the written chunk unshared");
    }

    #[test]
    fn cowvec_write_without_forks_keeps_chunks_private() {
        let mut a = CowVec::new(64, 0u8);
        *a.get_mut(3) = 1;
        assert_eq!(a.shared_chunks(), 0);
    }

    #[test]
    fn cowvec_unshare_detaches_every_chunk() {
        let mut a = CowVec::new(1000, 7u64);
        let b = a.clone();
        a.unshare();
        assert_eq!(a.shared_chunks(), 0);
        assert_eq!(b.iter().filter(|&&x| x == 7).count(), 1000);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cowvec_oob_panics() {
        let v = CowVec::new(4, 0u8);
        v.get(4);
    }

    #[test]
    fn cowmap_insert_get_remove() {
        let mut m: CowMap<String> = CowMap::new(1 << 16);
        assert_eq!(m.get(5), None);
        assert_eq!(m.insert(5, "a".into()), None);
        assert_eq!(m.insert(5, "b".into()), Some("a".into()));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(5).map(String::as_str), Some("b"));
        assert_eq!(m.remove(5), Some("b".into()));
        assert_eq!(m.remove(5), None);
        assert!(m.is_empty());
    }

    #[test]
    fn cowmap_iterates_in_key_order() {
        let mut m: CowMap<u64> = CowMap::new(1 << 20);
        for k in [900_000, 3, 65_000, 12] {
            m.insert(k, k + 1);
        }
        assert_eq!(m.keys().collect::<Vec<_>>(), vec![3, 12, 65_000, 900_000]);
        assert_eq!(m.iter().map(|(k, v)| (k, *v)).collect::<Vec<_>>()[1], (12, 13));
    }

    #[test]
    fn cowmap_clone_isolates_writes() {
        let mut m: CowMap<u64> = CowMap::new(4096);
        m.insert(100, 1);
        m.insert(2000, 2);
        let f = m.clone();
        m.insert(100, 99);
        m.remove(2000);
        *m.get_or_insert_with(300, || 0) += 5;
        assert_eq!(f.get(100), Some(&1));
        assert_eq!(f.get(2000), Some(&2));
        assert_eq!(f.get(300), None);
        assert_eq!(m.get(300), Some(&5));
    }

    #[test]
    fn cowmap_clear_is_isolated_and_cheap() {
        let mut m: CowMap<u64> = CowMap::new(1 << 20);
        m.insert(7, 7);
        let f = m.clone();
        m.clear();
        assert!(m.is_empty());
        assert_eq!(f.get(7), Some(&7));
    }

    #[test]
    fn cowmap_get_or_insert_with_matches_entry_semantics() {
        let mut m: CowMap<u64> = CowMap::new(64);
        *m.get_or_insert_with(9, || 40) += 2;
        *m.get_or_insert_with(9, || 1000) += 0;
        assert_eq!(m.get(9), Some(&42));
        assert_eq!(m.len(), 1);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn cowmap_oob_panics() {
        let m: CowMap<u8> = CowMap::new(16);
        m.get(16);
    }

    #[test]
    fn tiny_capacities_work() {
        let v = CowVec::new(1, 5u8);
        assert_eq!(*v.get(0), 5);
        let mut m: CowMap<u8> = CowMap::new(1);
        m.insert(0, 1);
        assert_eq!(m.get(0), Some(&1));
        let empty = CowVec::<u8>::from_fn(0, |_| 0);
        assert!(empty.is_empty());
    }
}
