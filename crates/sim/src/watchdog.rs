//! Deterministic trial watchdog: cycle-count deadlines for supervised
//! trial execution.
//!
//! The bench harness arms a per-thread budget before running a trial
//! body; every [`Clock`](crate::clock::Clock) advance reports its delta
//! here via [`spend`]. When the accumulated simulated time crosses the
//! armed limit, the watchdog panics with a [`DeadlineExceeded`] payload
//! that the supervisor catches and converts into a structured trial
//! failure. Because the budget is measured in *simulated* cycles, the
//! same trial exceeds (or meets) its deadline identically on every
//! host, every thread count and every re-run — the deadline is part of
//! the deterministic experiment contract, not a flaky timeout.
//!
//! A wall-clock backstop rides along: the supervisor may hand [`arm`] a
//! shared abort flag that its timer thread sets once real time runs
//! out. The flag is only observed at clock advances, so a trial that
//! spins without advancing simulated time cannot be interrupted — that
//! limitation is deliberate (there is no portable way to kill a thread)
//! and documented in `DESIGN.md` §10.
//!
//! When no budget is armed — the default, and the state restored after
//! every supervised trial — the hot-path cost of [`spend`] is a single
//! thread-local flag read.
//!
//! ```
//! use metaleak_sim::clock::{Clock, Cycles};
//! use metaleak_sim::watchdog::{self, DeadlineExceeded};
//!
//! watchdog::arm(100, None);
//! let mut clock = Clock::new();
//! clock.advance(Cycles::new(60)); // fine: 60 of 100 spent
//! let err = std::panic::catch_unwind(move || {
//!     clock.advance(Cycles::new(60)); // 120 > 100: deadline
//! })
//! .unwrap_err();
//! let deadline = err.downcast::<DeadlineExceeded>().unwrap();
//! assert_eq!(deadline.limit, 100);
//! assert!(!watchdog::is_armed(), "exceeding the budget disarms");
//! watchdog::disarm();
//! ```

use std::cell::Cell;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Panic payload thrown when a trial exhausts its watchdog budget.
///
/// Thrown via [`std::panic::panic_any`] so supervisors can downcast the
/// payload and distinguish deadline failures from ordinary panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlineExceeded {
    /// Simulated cycles spent when the budget check fired.
    pub spent: u64,
    /// The armed cycle budget.
    pub limit: u64,
    /// True when the wall-clock backstop (not the cycle budget)
    /// triggered the abort.
    pub wall: bool,
}

impl fmt::Display for DeadlineExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.wall {
            write!(f, "trial aborted by wall-clock backstop after {} simulated cycles", self.spent)
        } else {
            write!(f, "trial exceeded its cycle budget: {} > {} cycles", self.spent, self.limit)
        }
    }
}

thread_local! {
    static ARMED: Cell<bool> = const { Cell::new(false) };
    static LIMIT: Cell<u64> = const { Cell::new(u64::MAX) };
    static SPENT: Cell<u64> = const { Cell::new(0) };
    static WALL_ABORT: std::cell::RefCell<Option<Arc<AtomicBool>>> =
        const { std::cell::RefCell::new(None) };
}

/// Arms the current thread's watchdog with a cycle budget and an
/// optional wall-clock abort flag, resetting the spent counter.
///
/// The previous armed state (if any) is overwritten; supervisors arm
/// immediately before a trial attempt and [`disarm`] in all exit paths.
pub fn arm(limit_cycles: u64, wall_abort: Option<Arc<AtomicBool>>) {
    LIMIT.with(|l| l.set(limit_cycles));
    SPENT.with(|s| s.set(0));
    WALL_ABORT.with(|w| *w.borrow_mut() = wall_abort);
    ARMED.with(|a| a.set(true));
}

/// Disarms the watchdog on the current thread; [`spend`] becomes a
/// no-op flag check again.
pub fn disarm() {
    ARMED.with(|a| a.set(false));
    WALL_ABORT.with(|w| *w.borrow_mut() = None);
}

/// Resets the spent counter while keeping the current limit and abort
/// flag armed.
///
/// Used at the warmup/trial boundary in non-shared snapshot mode so the
/// trial body gets the same fresh budget it would have received had the
/// warmup run separately under snapshot sharing — keeping deadline
/// failures byte-identical across `METALEAK_SNAPSHOT` modes.
pub fn rearm() {
    SPENT.with(|s| s.set(0));
}

/// True when a budget is currently armed on this thread.
pub fn is_armed() -> bool {
    ARMED.with(Cell::get)
}

/// Simulated cycles spent since the watchdog was last armed (0 when
/// disarmed).
pub fn spent() -> u64 {
    SPENT.with(Cell::get)
}

/// Reports `delta` simulated cycles of progress; called by
/// [`Clock`](crate::clock::Clock) on every advance.
///
/// # Panics
/// Panics with a [`DeadlineExceeded`] payload when the accumulated
/// spend crosses the armed limit or the wall-clock abort flag is set.
/// The watchdog disarms itself first so the unwinding destructors (and
/// the supervisor's cleanup path) do not re-trigger it.
#[inline]
pub fn spend(delta: u64) {
    if !ARMED.with(Cell::get) {
        return;
    }
    let spent = SPENT.with(|s| {
        let v = s.get().saturating_add(delta);
        s.set(v);
        v
    });
    let limit = LIMIT.with(Cell::get);
    let wall =
        WALL_ABORT.with(|w| w.borrow().as_ref().is_some_and(|flag| flag.load(Ordering::Relaxed)));
    if spent > limit || wall {
        disarm();
        std::panic::panic_any(DeadlineExceeded { spent, limit, wall });
    }
}

/// Runs `f` with the watchdog suspended, restoring the armed state
/// afterwards (spent cycles are preserved, not reset).
///
/// Supervisors use this around bookkeeping that advances a clock but is
/// not part of the trial body being budgeted.
pub fn suspended<T>(f: impl FnOnce() -> T) -> T {
    let was_armed = ARMED.with(Cell::get);
    ARMED.with(|a| a.set(false));
    let out = f();
    ARMED.with(|a| a.set(was_armed));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::{Clock, Cycles};
    use std::panic::{catch_unwind, AssertUnwindSafe};

    /// Restores a clean disarmed state even if an assertion fails.
    struct DisarmOnDrop;
    impl Drop for DisarmOnDrop {
        fn drop(&mut self) {
            disarm();
        }
    }

    #[test]
    fn disarmed_watchdog_never_fires() {
        let _guard = DisarmOnDrop;
        disarm();
        let mut clock = Clock::new();
        clock.advance(Cycles::new(u64::MAX / 2));
        assert_eq!(spent(), 0);
        assert!(!is_armed());
    }

    #[test]
    fn cycle_budget_fires_deterministically() {
        let _guard = DisarmOnDrop;
        arm(100, None);
        let mut clock = Clock::new();
        clock.advance(Cycles::new(40));
        clock.advance(Cycles::new(60)); // exactly at the limit: allowed
        assert_eq!(spent(), 100);
        let err = catch_unwind(AssertUnwindSafe(|| {
            clock.advance(Cycles::new(1));
        }))
        .unwrap_err();
        let deadline = err.downcast::<DeadlineExceeded>().expect("typed payload");
        assert_eq!(*deadline, DeadlineExceeded { spent: 101, limit: 100, wall: false });
        assert!(!is_armed(), "firing disarms the watchdog");
        assert!(deadline.to_string().contains("101 > 100"));
    }

    #[test]
    fn advance_to_counts_only_forward_progress() {
        let _guard = DisarmOnDrop;
        arm(50, None);
        let mut clock = Clock::new();
        clock.advance_to(Cycles::new(30));
        clock.advance_to(Cycles::new(10)); // no-op: no spend
        assert_eq!(spent(), 30);
        clock.advance_to(Cycles::new(50));
        assert_eq!(spent(), 50);
        disarm();
    }

    #[test]
    fn rearm_resets_spend_but_keeps_limit() {
        let _guard = DisarmOnDrop;
        arm(100, None);
        let mut clock = Clock::new();
        clock.advance(Cycles::new(90));
        rearm();
        assert_eq!(spent(), 0);
        // The same 90-cycle warmup would now fit again.
        clock.advance(Cycles::new(90));
        assert_eq!(spent(), 90);
        assert!(is_armed());
        disarm();
    }

    #[test]
    fn wall_abort_flag_fires_at_next_advance() {
        let _guard = DisarmOnDrop;
        let flag = Arc::new(AtomicBool::new(false));
        arm(u64::MAX, Some(Arc::clone(&flag)));
        let mut clock = Clock::new();
        clock.advance(Cycles::new(10));
        flag.store(true, Ordering::Relaxed);
        let err = catch_unwind(AssertUnwindSafe(|| {
            clock.advance(Cycles::new(1));
        }))
        .unwrap_err();
        let deadline = err.downcast::<DeadlineExceeded>().expect("typed payload");
        assert!(deadline.wall);
        assert!(deadline.to_string().contains("wall-clock backstop"));
    }

    #[test]
    fn suspended_sections_do_not_spend() {
        let _guard = DisarmOnDrop;
        arm(100, None);
        let mut clock = Clock::new();
        clock.advance(Cycles::new(40));
        suspended(|| {
            clock.advance(Cycles::new(1_000_000));
        });
        assert_eq!(spent(), 40, "suspended advances must not count");
        assert!(is_armed());
        disarm();
    }
}
