//! Sweep specifications: the JSON job language, its validation, and
//! the content key that addresses finished artifacts.
//!
//! A spec names a covert-channel victim, a list of secure-memory
//! configurations and a list of seeds; the sweep runs every
//! `configuration × seed` point with `trials_per_point` supervised
//! trials each. Parsing is *lenient about unknown keys* (they warn
//! through the [`metaleak_bench::diag`] sink attributed to the
//! submitting job) and *strict about known ones*: every recognized
//! field is bounds-checked, and configuration overrides go through
//! [`SecureConfigBuilder`] so a spec can never construct a memory
//! shape the engine's own builder would not.
//!
//! # Content addressing
//!
//! [`SweepSpec::content_key`] is a SHA-256 over the canonical
//! rendering of the spec (fixed field order, defaults materialized),
//! the serve protocol version and the engine's
//! [`metaleak_engine::STATE_SHAPE`] tag. Two submissions share a key
//! exactly when they would execute the same trials on the same seed
//! streams against the same engine state layout — which is what makes
//! the artifact cache sound: trial `t` of point `p` always draws
//! `SimRng::seed_from(seed[p]).split(p * trials_per_point + t)`, so
//! the key covers every bit of entropy the execution consumes.

use metaleak::configs;
use metaleak_bench::diag;
use metaleak_bench::json::{Json, JsonObj};
use metaleak_crypto::sha256::{self, Sha256};
use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};

/// Version tag folded into every content key: bump when the server's
/// execution semantics change in a way that invalidates cached
/// artifacts (seeding convention, row schema, trial structure).
pub const PROTOCOL_VERSION: u32 = 1;

/// Upper bound on `configs × seeds` points per job.
pub const MAX_POINTS: usize = 64;

/// Upper bound on trials per sweep point.
pub const MAX_TRIALS_PER_POINT: usize = 64;

/// Upper bound on bits/symbols transmitted per trial.
pub const MAX_PAYLOAD: usize = 4096;

/// The covert channel a sweep drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Victim {
    /// MetaLeak-T: tree-cache timing channel (Figure 11).
    CovertT,
    /// MetaLeak-C: counter-overflow channel (Figure 14).
    CovertC,
}

impl Victim {
    /// The wire name (`"covert_t"` / `"covert_c"`).
    pub fn name(self) -> &'static str {
        match self {
            Victim::CovertT => "covert_t",
            Victim::CovertC => "covert_c",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "covert_t" => Some(Victim::CovertT),
            "covert_c" => Some(Victim::CovertC),
            _ => None,
        }
    }
}

/// A secure-memory configuration preset, by wire name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigKind {
    /// Split counters + split-counter tree (VAULT-style).
    Sct,
    /// Bonsai Merkle hash tree.
    Ht,
    /// SGX-like: monolithic counters, 8-ary SIT, MEE latencies.
    Sit,
}

impl ConfigKind {
    /// The wire name (`"sct"` / `"ht"` / `"sit"`).
    pub fn name(self) -> &'static str {
        match self {
            ConfigKind::Sct => "sct",
            ConfigKind::Ht => "ht",
            ConfigKind::Sit => "sit",
        }
    }

    /// The tree level the MetaLeak-T channel monitors on this
    /// configuration (the Figure-11 setup: level 0 on SCT-style
    /// trees, level 1 on the SGX SIT).
    pub fn covert_t_level(self) -> u8 {
        match self {
            ConfigKind::Sct | ConfigKind::Ht => 0,
            ConfigKind::Sit => 1,
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "sct" => Some(ConfigKind::Sct),
            "ht" => Some(ConfigKind::Ht),
            "sit" => Some(ConfigKind::Sit),
            _ => None,
        }
    }
}

/// Gate requirement attached to a spec: what the leakage assessment
/// must conclude for the job's gate verdict to pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Requirement {
    /// The experiment must show a leak (|t| above the TVLA threshold).
    Leak,
    /// The experiment must be clean.
    Clean,
    /// No gate: the report is informational.
    None,
}

impl Requirement {
    fn name(self) -> &'static str {
        match self {
            Requirement::Leak => "leak",
            Requirement::Clean => "clean",
            Requirement::None => "none",
        }
    }

    fn parse(s: &str) -> Option<Self> {
        match s {
            "leak" => Some(Requirement::Leak),
            "clean" => Some(Requirement::Clean),
            "none" => Some(Requirement::None),
            _ => None,
        }
    }
}

/// A spec that failed validation; the message is returned verbatim in
/// the `400` response body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError(pub String);

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for SpecError {}

fn err(msg: impl Into<String>) -> SpecError {
    SpecError(msg.into())
}

/// A validated sweep specification.
///
/// # Example
///
/// Parse the same JSON a client would `POST /jobs`; the canonical
/// render (and hence the content key) is independent of field order
/// and whitespace in the submission:
///
/// ```
/// use metaleak_serve::spec::SweepSpec;
///
/// let spec = SweepSpec::parse(
///     r#"{"experiment":"demo","victim":"covert_t","configs":["sct"],
///         "seeds":[7],"trials_per_point":2,"payload_per_trial":16,
///         "preamble_bits":8,"require":"leak"}"#,
/// ).expect("valid spec");
/// assert_eq!(spec.experiment, "demo");
/// assert_eq!(spec.points(), 1); // 1 config x 1 seed
///
/// let shuffled = SweepSpec::parse(
///     r#"{ "require":"leak", "preamble_bits":8, "payload_per_trial":16,
///          "trials_per_point":2, "seeds":[7], "configs":["sct"],
///          "victim":"covert_t", "experiment":"demo" }"#,
/// ).expect("valid spec");
/// assert_eq!(spec.canonical().render(), shuffled.canonical().render());
/// ```
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Artifact base name (`<experiment>.jsonl` / `.meta.json`).
    pub experiment: String,
    /// The covert channel to drive.
    pub victim: Victim,
    /// Configurations swept (outer sweep axis).
    pub configs: Vec<ConfigKind>,
    /// Seeds swept (inner sweep axis).
    pub seeds: Vec<u64>,
    /// Supervised trials per `configuration × seed` point.
    pub trials_per_point: usize,
    /// Bits (MetaLeak-T) or symbols (MetaLeak-C) per trial.
    pub payload_per_trial: usize,
    /// Priming bits transmitted during each point's warmup before the
    /// snapshot is taken (MetaLeak-T only).
    pub preamble_bits: usize,
    /// Tree minor-counter width override (MetaLeak-C capacity knob).
    pub tree_minor_bits: Option<u8>,
    /// Gaussian latency-jitter override.
    pub noise_sd: Option<f64>,
    /// Protected-region size override in pages.
    pub pages: Option<u64>,
    /// Gate requirement evaluated into the job's report.
    pub require: Requirement,
    /// Failure budget: admits degraded artifacts to assessment and
    /// fails the gate when more trials were lost.
    pub max_failed_trials: Option<usize>,
    /// Global trial indices whose bodies deterministically panic —
    /// the supervisor's fault-injection hook, exposed for poisoning
    /// tests.
    pub fail_trials: Vec<usize>,
    /// Supervised retries after each trial's first attempt.
    pub retries: u32,
}

impl SweepSpec {
    /// Parses and validates a spec from JSON text. Unknown keys warn
    /// through [`diag`] (so the server attributes them to the
    /// submitting job); known keys with wrong types or out-of-bounds
    /// values are hard errors.
    pub fn parse(text: &str) -> Result<SweepSpec, SpecError> {
        let json = Json::parse(text).map_err(|e| err(format!("invalid JSON: {e}")))?;
        SweepSpec::from_json(&json)
    }

    /// Parses and validates a spec from an already-parsed JSON value.
    pub fn from_json(json: &Json) -> Result<SweepSpec, SpecError> {
        let Json::Obj(fields) = json else {
            return Err(err("spec must be a JSON object"));
        };
        const KNOWN: [&str; 14] = [
            "experiment",
            "victim",
            "configs",
            "seeds",
            "trials_per_point",
            "payload_per_trial",
            "preamble_bits",
            "tree_minor_bits",
            "noise_sd",
            "pages",
            "require",
            "max_failed_trials",
            "fail_trials",
            "retries",
        ];
        for (key, _) in fields {
            if !KNOWN.contains(&key.as_str()) {
                diag::warn_once(key, &format!("ignoring unknown spec field {key:?}"));
            }
        }

        let experiment = json
            .get("experiment")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing string field \"experiment\""))?
            .to_owned();
        if experiment.is_empty()
            || experiment.len() > 64
            || !experiment
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_' || b == b'-')
        {
            return Err(err("\"experiment\" must be 1-64 chars of [a-z0-9_-]"));
        }

        let victim = json
            .get("victim")
            .and_then(Json::as_str)
            .ok_or_else(|| err("missing string field \"victim\""))?;
        let victim = Victim::parse(victim)
            .ok_or_else(|| err(format!("unknown victim {victim:?} (covert_t | covert_c)")))?;

        let configs = str_list(json, "configs")?
            .iter()
            .map(|s| {
                ConfigKind::parse(s)
                    .ok_or_else(|| err(format!("unknown config {s:?} (sct | ht | sit)")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if configs.is_empty() {
            return Err(err("\"configs\" must name at least one configuration"));
        }
        if victim == Victim::CovertC && configs.iter().any(|&c| c != ConfigKind::Sct) {
            return Err(err("covert_c sweeps support only the \"sct\" configuration"));
        }

        let seeds = u64_list(json, "seeds")?;
        if seeds.is_empty() {
            return Err(err("\"seeds\" must list at least one seed"));
        }
        for (i, s) in seeds.iter().enumerate() {
            if seeds[..i].contains(s) {
                return Err(err(format!("duplicate seed {s} (seed streams must be distinct)")));
            }
        }
        if configs.len() * seeds.len() > MAX_POINTS {
            return Err(err(format!("configs × seeds exceeds {MAX_POINTS} sweep points")));
        }

        let trials_per_point = usize_field(json, "trials_per_point", 1, MAX_TRIALS_PER_POINT, 2)?;
        let payload_per_trial = usize_field(json, "payload_per_trial", 1, MAX_PAYLOAD, 32)?;
        let preamble_bits = usize_field(json, "preamble_bits", 0, 1024, 16)?;
        let retries = usize_field(json, "retries", 0, 8, 0)? as u32;

        let tree_minor_bits = match json.get("tree_minor_bits") {
            None => None,
            Some(v) => {
                let bits = v
                    .as_u64()
                    .filter(|&b| (1..=7).contains(&b))
                    .ok_or_else(|| err("\"tree_minor_bits\" must be an integer in 1..=7"))?;
                Some(bits as u8)
            }
        };
        let noise_sd = match json.get("noise_sd") {
            None => None,
            Some(v) => {
                let sd = v
                    .as_f64()
                    .filter(|sd| sd.is_finite() && *sd >= 0.0 && *sd <= 1000.0)
                    .ok_or_else(|| err("\"noise_sd\" must be a finite number in 0..=1000"))?;
                Some(sd)
            }
        };
        let pages = match json.get("pages") {
            None => None,
            Some(v) => {
                let p = v
                    .as_u64()
                    .filter(|&p| (4096..=65536).contains(&p))
                    .ok_or_else(|| err("\"pages\" must be an integer in 4096..=65536"))?;
                Some(p)
            }
        };

        let require = match json.get("require") {
            None => Requirement::None,
            Some(v) => {
                let s = v.as_str().ok_or_else(|| err("\"require\" must be a string"))?;
                Requirement::parse(s).ok_or_else(|| {
                    err(format!("unknown requirement {s:?} (leak | clean | none)"))
                })?
            }
        };
        let max_failed_trials = match json.get("max_failed_trials") {
            None => None,
            Some(v) => {
                Some(v.as_u64().ok_or_else(|| err("\"max_failed_trials\" must be an integer"))?
                    as usize)
            }
        };
        let fail_trials = match json.get("fail_trials") {
            None => Vec::new(),
            Some(_) => u64_list(json, "fail_trials")?.iter().map(|&t| t as usize).collect(),
        };

        let spec = SweepSpec {
            experiment,
            victim,
            configs,
            seeds,
            trials_per_point,
            payload_per_trial,
            preamble_bits,
            tree_minor_bits,
            noise_sd,
            pages,
            require,
            max_failed_trials,
            fail_trials,
            retries,
        };
        for &t in &spec.fail_trials {
            if t >= spec.total_trials() {
                return Err(err(format!(
                    "\"fail_trials\" index {t} out of range (job has {} trials)",
                    spec.total_trials()
                )));
            }
        }
        // Exercise the builder path once per configuration: a spec is
        // only valid if the engine's own builder accepts its shape.
        for &kind in &spec.configs {
            let _ = spec.build_config(kind);
        }
        Ok(spec)
    }

    /// Number of sweep points (`configs × seeds`).
    pub fn points(&self) -> usize {
        self.configs.len() * self.seeds.len()
    }

    /// Total supervised trials across the sweep.
    pub fn total_trials(&self) -> usize {
        self.points() * self.trials_per_point
    }

    /// The configuration and seed behind sweep point `p` (points are
    /// numbered `config-major`: `p = cfg_idx * seeds.len() + seed_idx`).
    pub fn point(&self, p: usize) -> (ConfigKind, u64) {
        (self.configs[p / self.seeds.len()], self.seeds[p % self.seeds.len()])
    }

    /// Builds the secure-memory configuration for one sweep axis
    /// entry, applying the spec's overrides through
    /// [`SecureConfigBuilder`].
    pub fn build_config(&self, kind: ConfigKind) -> SecureConfig {
        let base = match kind {
            ConfigKind::Sct => match self.tree_minor_bits {
                Some(bits) => configs::sct_experiment_with_tree_bits(bits),
                None => configs::sct_experiment(),
            },
            ConfigKind::Ht => configs::ht_experiment(),
            ConfigKind::Sit => configs::sgx_experiment(),
        };
        let mut builder = SecureConfigBuilder::from_config(base);
        if let Some(sd) = self.noise_sd {
            builder = builder.noise_sd(sd);
        }
        if let Some(pages) = self.pages {
            builder = builder.data_pages(pages);
        }
        builder.build()
    }

    /// The canonical JSON rendering: fixed field order with every
    /// default materialized, so two specs that execute identically
    /// render identically.
    pub fn canonical(&self) -> Json {
        let mut obj = JsonObj::new()
            .field("experiment", self.experiment.as_str())
            .field("victim", self.victim.name())
            .field(
                "configs",
                Json::Arr(self.configs.iter().map(|c| Json::from(c.name())).collect()),
            )
            .field("seeds", self.seeds.clone())
            .field("trials_per_point", self.trials_per_point)
            .field("payload_per_trial", self.payload_per_trial)
            .field("preamble_bits", self.preamble_bits);
        if let Some(bits) = self.tree_minor_bits {
            obj = obj.field("tree_minor_bits", bits);
        }
        if let Some(sd) = self.noise_sd {
            obj = obj.field("noise_sd", sd);
        }
        if let Some(pages) = self.pages {
            obj = obj.field("pages", pages);
        }
        obj = obj.field("require", self.require.name());
        if let Some(max) = self.max_failed_trials {
            obj = obj.field("max_failed_trials", max);
        }
        if !self.fail_trials.is_empty() {
            obj = obj.field(
                "fail_trials",
                self.fail_trials.iter().map(|&t| t as u64).collect::<Vec<u64>>(),
            );
        }
        obj.field("retries", self.retries).build()
    }

    /// The content key addressing this spec's artifacts: SHA-256 over
    /// the canonical spec, the serve protocol version and the engine's
    /// state-shape tag (so an engine refactor that changes simulated
    /// state can never serve stale bytes).
    pub fn content_key(&self) -> String {
        let material = format!(
            "metaleak-serve/v{PROTOCOL_VERSION}\n{}\n{}",
            metaleak_engine::STATE_SHAPE,
            self.canonical().render()
        );
        sha256::hex(&Sha256::digest(material.as_bytes()))
    }

    /// The artifact seed recorded in the commit record (and used for
    /// analysis bootstrap streams): a digest of the canonical spec, so
    /// distinct sweeps never share analysis randomness.
    pub fn artifact_seed(&self) -> u64 {
        sha256::digest64(self.canonical().render().as_bytes())
    }
}

fn str_list(json: &Json, key: &str) -> Result<Vec<String>, SpecError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| err(format!("missing array field {key:?}")))?
        .iter()
        .map(|v| v.as_str().map(str::to_owned))
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| err(format!("{key:?} must be an array of strings")))
}

fn u64_list(json: &Json, key: &str) -> Result<Vec<u64>, SpecError> {
    json.get(key)
        .and_then(Json::as_arr)
        .ok_or_else(|| err(format!("missing array field {key:?}")))?
        .iter()
        .map(Json::as_u64)
        .collect::<Option<Vec<_>>>()
        .ok_or_else(|| err(format!("{key:?} must be an array of non-negative integers")))
}

fn usize_field(
    json: &Json,
    key: &str,
    min: usize,
    max: usize,
    default: usize,
) -> Result<usize, SpecError> {
    match json.get(key) {
        None => Ok(default),
        Some(v) => v
            .as_u64()
            .map(|n| n as usize)
            .filter(|n| (min..=max).contains(n))
            .ok_or_else(|| err(format!("{key:?} must be an integer in {min}..={max}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minimal() -> String {
        r#"{"experiment":"smoke","victim":"covert_t","configs":["sct"],"seeds":[7]}"#.to_owned()
    }

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let spec = SweepSpec::parse(&minimal()).expect("parse");
        assert_eq!(spec.experiment, "smoke");
        assert_eq!(spec.victim, Victim::CovertT);
        assert_eq!(spec.points(), 1);
        assert_eq!(spec.trials_per_point, 2);
        assert_eq!(spec.require, Requirement::None);
    }

    #[test]
    fn content_key_is_stable_and_seed_sensitive() {
        let a = SweepSpec::parse(&minimal()).unwrap();
        let b = SweepSpec::parse(&minimal()).unwrap();
        assert_eq!(a.content_key(), b.content_key());
        let c = SweepSpec::parse(&minimal().replace("[7]", "[8]")).unwrap();
        assert_ne!(a.content_key(), c.content_key(), "seed change must change the key");
    }

    #[test]
    fn content_key_covers_every_knob() {
        let base = SweepSpec::parse(&minimal()).unwrap();
        let mutations = [
            ("\"experiment\":\"smoke\"", "\"experiment\":\"smoke2\""),
            ("\"victim\":\"covert_t\"", "\"victim\":\"covert_c\""),
            ("\"configs\":[\"sct\"]", "\"configs\":[\"sct\",\"ht\"]"),
            ("\"seeds\":[7]", "\"seeds\":[7,9]"),
        ];
        for (from, to) in mutations {
            let mutated = SweepSpec::parse(&minimal().replace(from, to)).unwrap();
            assert_ne!(base.content_key(), mutated.content_key(), "{from} -> {to}");
        }
    }

    #[test]
    fn unknown_fields_warn_but_parse() {
        let captured = std::sync::Arc::new(std::sync::Mutex::new(Vec::new()));
        let sink = captured.clone();
        let spec = diag::with_sink(
            std::sync::Arc::new(move |msg: &str| sink.lock().unwrap().push(msg.to_owned())),
            || SweepSpec::parse(&minimal().replace("\"seeds\"", "\"frobnicate\":true,\"seeds\"")),
        )
        .expect("lenient parse");
        assert_eq!(spec.experiment, "smoke");
        let warnings = captured.lock().unwrap();
        assert!(warnings.iter().any(|w| w.contains("frobnicate")), "{warnings:?}");
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let cases = [
            ("not json", "invalid JSON"),
            ("[1,2]", "must be a JSON object"),
            (r#"{"victim":"covert_t","configs":["sct"],"seeds":[1]}"#, "experiment"),
            (
                r#"{"experiment":"UPPER","victim":"covert_t","configs":["sct"],"seeds":[1]}"#,
                "a-z0-9_-",
            ),
            (r#"{"experiment":"x","victim":"nope","configs":["sct"],"seeds":[1]}"#, "victim"),
            (r#"{"experiment":"x","victim":"covert_t","configs":[],"seeds":[1]}"#, "at least one"),
            (
                r#"{"experiment":"x","victim":"covert_t","configs":["sct"],"seeds":[1,1]}"#,
                "duplicate seed",
            ),
            (
                r#"{"experiment":"x","victim":"covert_c","configs":["ht"],"seeds":[1]}"#,
                "only the \"sct\"",
            ),
            (
                r#"{"experiment":"x","victim":"covert_t","configs":["sct"],"seeds":[1],"trials_per_point":0}"#,
                "trials_per_point",
            ),
            (
                r#"{"experiment":"x","victim":"covert_t","configs":["sct"],"seeds":[1],"fail_trials":[99]}"#,
                "out of range",
            ),
            (
                r#"{"experiment":"x","victim":"covert_t","configs":["sct"],"seeds":[1],"tree_minor_bits":9}"#,
                "tree_minor_bits",
            ),
        ];
        for (text, needle) in cases {
            let e = SweepSpec::parse(text).expect_err(text);
            assert!(e.0.contains(needle), "{text} -> {e}");
        }
    }

    #[test]
    fn point_numbering_is_config_major() {
        let spec = SweepSpec::parse(
            r#"{"experiment":"x","victim":"covert_t","configs":["sct","sit"],"seeds":[3,5]}"#,
        )
        .unwrap();
        assert_eq!(spec.points(), 4);
        assert_eq!(spec.point(0), (ConfigKind::Sct, 3));
        assert_eq!(spec.point(1), (ConfigKind::Sct, 5));
        assert_eq!(spec.point(2), (ConfigKind::Sit, 3));
        assert_eq!(spec.point(3), (ConfigKind::Sit, 5));
    }

    #[test]
    fn overrides_flow_through_the_builder() {
        let spec = SweepSpec::parse(
            r#"{"experiment":"x","victim":"covert_c","configs":["sct"],"seeds":[1],"tree_minor_bits":3,"pages":8192,"noise_sd":1.5}"#,
        )
        .unwrap();
        let cfg = spec.build_config(ConfigKind::Sct);
        assert_eq!(cfg.tree_widths.minor_bits, 3);
        assert_eq!(cfg.data_pages, 8192);
        assert!((cfg.sim.noise_sd - 1.5).abs() < 1e-12);
    }
}
