//! The job registry and sweep execution engine.
//!
//! [`Server::submit`] validates a spec, resolves its content key
//! against the [`crate::cache`] (hit → served instantly; in flight →
//! attached to the running execution; vacant → this job leads), and
//! admits the leader through two backpressure gates: a bounded
//! admission queue and a per-tenant in-flight quota.
//!
//! A led job fans out one [`crate::pool`] task per sweep point. Each
//! task warms the point (build the secure memory, plan the channel,
//! transmit the priming preamble, snapshot) and runs its trials by
//! forking the snapshot under
//! [`metaleak_bench::supervisor::supervise`] — a panicking,
//! deadline-blown or fault-injected trial becomes a structured
//! [`TrialFailure`] that degrades the job, never the server. The last
//! point to finish finalizes: the rows flow through
//! [`Experiment::finish`] into the cache directory (the same commit
//! protocol every figure binary uses), `leakscan` runs in-process
//! over them ([`metaleak_analysis`]), the gate verdict is evaluated,
//! and `report.json` is written last as the cache commit record.
//!
//! Determinism: trial `t` of point `p` draws
//! `SimRng::seed_from(seed_p).split(p * trials_per_point + t)` and the
//! point's warmup draws `split(WARMUP_STREAM_BASE + p)` — the
//! harness's seeding convention, with the point index folded into the
//! stream id so configurations sweeping the same seed never share
//! randomness. Rows are collected by trial index, so the JSONL is
//! byte-identical for any worker count, which is what the
//! content-addressed cache relies on.

use crate::cache::{ArtifactCache, Reservation};
use crate::metrics::Metrics;
use crate::pool::WorkerPool;
use crate::spec::{Requirement, SweepSpec, Victim};
use metaleak_analysis::gates::{self, GatePolicy};
use metaleak_analysis::ingest;
use metaleak_analysis::report::LeakReport;
use metaleak_attacks::covert_c::CovertChannelC;
use metaleak_attacks::covert_t::CovertChannelT;
use metaleak_bench::diag;
use metaleak_bench::harness::{Experiment, RunSettings, Trial, WARMUP_STREAM_BASE};
use metaleak_bench::json::{Json, JsonObj};
use metaleak_bench::supervisor::{self, SupervisorPolicy, TrialFailure, TrialOutcome};
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_sim::rng::SimRng;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Server construction parameters.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads executing sweep points.
    pub workers: usize,
    /// Maximum unfinished jobs (leaders + attached waiters) before
    /// `POST /jobs` answers `429 queue-full`.
    pub queue_capacity: usize,
    /// Maximum unfinished jobs per tenant before `429 tenant-quota`.
    pub tenant_quota: usize,
    /// Root of the content-addressed artifact cache.
    pub cache_dir: PathBuf,
}

impl ServerConfig {
    /// Defaults: machine parallelism, a 32-job queue, 4 jobs per
    /// tenant, caching under `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        ServerConfig {
            workers: std::thread::available_parallelism().map(|n| n.get()).unwrap_or(2),
            queue_capacity: 32,
            tenant_quota: 4,
            cache_dir: dir.into(),
        }
    }
}

/// Why a submission was not admitted.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SubmitError {
    /// The spec failed to parse or validate (`400`).
    Invalid(String),
    /// The admission queue is full (`429`, `"reason":"queue-full"`).
    QueueFull,
    /// The tenant's in-flight quota is exhausted (`429`,
    /// `"reason":"tenant-quota"`).
    TenantQuota,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Invalid(msg) => write!(f, "invalid spec: {msg}"),
            SubmitError::QueueFull => f.write_str("admission queue full"),
            SubmitError::TenantQuota => f.write_str("tenant in-flight quota exhausted"),
        }
    }
}

/// Why a job's report or artifact could not be fetched.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// Unknown job id (`404`).
    NotFound,
    /// The job has not finished yet (`409`).
    NotFinished,
    /// The job failed; the message is the job's error (`500`).
    Failed(String),
}

/// A job's lifecycle state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Admitted, no point has started executing.
    Queued,
    /// At least one sweep point is executing (or the job is attached
    /// to an in-flight identical execution).
    Running,
    /// Finished; every trial succeeded and artifacts are cached.
    Done,
    /// Finished with failed trials; artifacts are complete and
    /// failure rows stand in for the lost trials.
    Degraded,
    /// The execution or its artifact commit failed outright.
    Failed,
}

impl JobStatus {
    /// The wire name.
    pub fn name(self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
            JobStatus::Degraded => "degraded",
            JobStatus::Failed => "failed",
        }
    }

    /// Whether the job has reached a terminal state.
    pub fn finished(self) -> bool {
        matches!(self, JobStatus::Done | JobStatus::Degraded | JobStatus::Failed)
    }
}

struct JobState {
    tenant: String,
    experiment: String,
    digest: String,
    status: JobStatus,
    cache_hit: bool,
    attached: bool,
    trials_run: u64,
    failed_trials: u64,
    gates_pass: Option<bool>,
    warnings: Vec<String>,
    error: Option<String>,
}

struct Inner {
    queue_capacity: usize,
    tenant_quota: usize,
    cache: ArtifactCache,
    metrics: Metrics,
    jobs: Mutex<HashMap<u64, JobState>>,
    tenants: Mutex<HashMap<String, usize>>,
    next_id: AtomicU64,
    in_flight: AtomicUsize,
}

/// The leakage-assessment service: job registry, worker pool and
/// artifact cache behind one submit/query façade. The HTTP layer
/// ([`crate::http`]) is a thin wire adapter over this type, and
/// tests drive it directly in-process.
pub struct Server {
    pool: WorkerPool,
    inner: Arc<Inner>,
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Server")
            .field("pool", &self.pool)
            .field("in_flight", &self.inner.in_flight.load(Ordering::Relaxed))
            .finish()
    }
}

/// Everything one led execution shares between its point tasks.
struct Exec {
    job_id: u64,
    spec: SweepSpec,
    digest: String,
    dir: PathBuf,
    results: Mutex<Vec<(usize, Result<RowData, TrialFailure>)>>,
    remaining: AtomicUsize,
    trials_run: AtomicU64,
}

/// One successful trial's deterministic row content.
struct RowData {
    config: &'static str,
    seed: u64,
    point: usize,
    accuracy: f64,
    alphabet: u64,
    cycles_per_symbol: f64,
    classes: Vec<u64>,
    values: Vec<u64>,
}

impl RowData {
    fn into_trial(self, idx: usize, victim: Victim) -> Trial {
        let accuracy_key = match victim {
            Victim::CovertT => "bit_accuracy",
            Victim::CovertC => "symbol_accuracy",
        };
        Trial::new(idx)
            .field("config", self.config)
            .field("seed", self.seed)
            .field("point", self.point)
            .field(accuracy_key, self.accuracy)
            .field("alphabet", self.alphabet)
            .field("cycles_per_symbol", self.cycles_per_symbol)
            .labelled_samples(&self.classes, &self.values)
    }
}

impl Server {
    /// Opens the cache and spawns the worker pool.
    pub fn start(cfg: ServerConfig) -> std::io::Result<Server> {
        let cache = ArtifactCache::open(&cfg.cache_dir)?;
        Ok(Server {
            pool: WorkerPool::new(cfg.workers),
            inner: Arc::new(Inner {
                queue_capacity: cfg.queue_capacity,
                tenant_quota: cfg.tenant_quota,
                cache,
                metrics: Metrics::default(),
                jobs: Mutex::new(HashMap::new()),
                tenants: Mutex::new(HashMap::new()),
                next_id: AtomicU64::new(0),
                in_flight: AtomicUsize::new(0),
            }),
        })
    }

    /// The service counters.
    pub fn metrics(&self) -> &Metrics {
        &self.inner.metrics
    }

    /// Validates and admits a sweep spec for `tenant`. Returns the job
    /// id; the job may already be finished (cache hit).
    pub fn submit(&self, tenant: &str, body: &str) -> Result<u64, SubmitError> {
        let inner = &self.inner;
        // Spec-parse warnings (lenient unknown keys) are captured and
        // attributed to the job instead of landing on stderr.
        let warnings: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let spec = {
            let sink = Arc::clone(&warnings);
            diag::with_sink(Arc::new(move |msg: &str| lock(&sink).push(msg.to_owned())), || {
                diag::with_context("spec", || SweepSpec::parse(body))
            })
        };
        let spec = match spec {
            Ok(spec) => spec,
            Err(e) => {
                Metrics::bump(&inner.metrics.rejected_invalid);
                return Err(SubmitError::Invalid(e.0));
            }
        };
        Metrics::bump(&inner.metrics.jobs_submitted);
        let digest = spec.content_key();
        let id = inner.next_id.fetch_add(1, Ordering::SeqCst) + 1;
        let warnings = std::mem::take(&mut *lock(&warnings));
        let mut job = JobState {
            tenant: tenant.to_owned(),
            experiment: spec.experiment.clone(),
            digest: digest.clone(),
            status: JobStatus::Queued,
            cache_hit: false,
            attached: false,
            trials_run: 0,
            failed_trials: 0,
            gates_pass: None,
            warnings,
            error: None,
        };

        // Fast path: committed artifacts bypass admission entirely —
        // a cached answer consumes no execution capacity.
        if let Some(dir) = inner.cache.peek(&digest) {
            Metrics::bump(&inner.metrics.cache_hits);
            job.cache_hit = true;
            finish_from_cache(&mut job, &dir);
            lock(&inner.jobs).insert(id, job);
            return Ok(id);
        }

        // Backpressure gates. Both are admission-time checks — the
        // race where two submissions pass together is benign (the
        // bounds are capacity targets, not invariants).
        if lock(&inner.tenants).get(tenant).copied().unwrap_or(0) >= inner.tenant_quota {
            Metrics::bump(&inner.metrics.rejected_tenant_quota);
            return Err(SubmitError::TenantQuota);
        }
        if inner.in_flight.load(Ordering::SeqCst) >= inner.queue_capacity {
            Metrics::bump(&inner.metrics.rejected_queue_full);
            return Err(SubmitError::QueueFull);
        }

        match inner.cache.reserve(&digest, id) {
            Reservation::Hit(dir) => {
                // Raced with a commit between peek and reserve.
                Metrics::bump(&inner.metrics.cache_hits);
                job.cache_hit = true;
                finish_from_cache(&mut job, &dir);
                lock(&inner.jobs).insert(id, job);
                Ok(id)
            }
            Reservation::Wait => {
                Metrics::bump(&inner.metrics.dedup_attached);
                inner.admit(tenant);
                job.attached = true;
                job.status = JobStatus::Running;
                lock(&inner.jobs).insert(id, job);
                Ok(id)
            }
            Reservation::Lead(dir) => {
                inner.admit(tenant);
                lock(&inner.jobs).insert(id, job);
                let exec = Arc::new(Exec {
                    job_id: id,
                    digest,
                    dir,
                    remaining: AtomicUsize::new(spec.points()),
                    results: Mutex::new(Vec::new()),
                    trials_run: AtomicU64::new(0),
                    spec,
                });
                for p in 0..exec.spec.points() {
                    let (inner, exec) = (Arc::clone(&self.inner), Arc::clone(&exec));
                    self.pool.submit(move || point_task(&inner, &exec, p));
                }
                Ok(id)
            }
        }
    }

    /// The job's status as a JSON object, or `None` for unknown ids.
    pub fn job_json(&self, id: u64) -> Option<Json> {
        let jobs = lock(&self.inner.jobs);
        let job = jobs.get(&id)?;
        Some(
            JsonObj::new()
                .field("id", id)
                .field("tenant", job.tenant.as_str())
                .field("experiment", job.experiment.as_str())
                .field("content_key", job.digest.as_str())
                .field("status", job.status.name())
                .field("cache_hit", job.cache_hit)
                .field("attached", job.attached)
                .field("trials_run", job.trials_run)
                .field("failed_trials", job.failed_trials)
                .field("gates_pass", job.gates_pass.map(Json::Bool).unwrap_or(Json::Null))
                .field("warnings", job.warnings.clone())
                .field("error", job.error.clone().map(Json::Str).unwrap_or(Json::Null))
                .build(),
        )
    }

    /// The finished job's `report.json` body (leakscan + gate
    /// verdict).
    pub fn report(&self, id: u64) -> Result<String, FetchError> {
        self.artifact(id, "report").map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
    }

    /// Raw cached artifact bytes: `kind` is `jsonl`, `meta` or
    /// `report`.
    pub fn artifact(&self, id: u64, kind: &str) -> Result<Vec<u8>, FetchError> {
        let (digest, experiment) = {
            let jobs = lock(&self.inner.jobs);
            let job = jobs.get(&id).ok_or(FetchError::NotFound)?;
            match job.status {
                JobStatus::Queued | JobStatus::Running => return Err(FetchError::NotFinished),
                JobStatus::Failed => {
                    return Err(FetchError::Failed(
                        job.error.clone().unwrap_or_else(|| "job failed".to_owned()),
                    ))
                }
                JobStatus::Done | JobStatus::Degraded => {}
            }
            (job.digest.clone(), job.experiment.clone())
        };
        let dir = self.inner.cache.dir(&digest);
        let path = match kind {
            "jsonl" => dir.join(format!("{experiment}.jsonl")),
            "meta" => dir.join(format!("{experiment}.meta.json")),
            "report" => dir.join("report.json"),
            _ => return Err(FetchError::NotFound),
        };
        std::fs::read(&path).map_err(|e| FetchError::Failed(format!("{}: {e}", path.display())))
    }

    /// Polls until the job reaches a terminal state (test helper).
    pub fn wait(&self, id: u64, timeout: Duration) -> Option<JobStatus> {
        let deadline = Instant::now() + timeout;
        loop {
            let status = lock(&self.inner.jobs).get(&id)?.status;
            if status.finished() {
                return Some(status);
            }
            if Instant::now() > deadline {
                return None;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
    }
}

impl Inner {
    /// Books an admitted (non-cached) job against both backpressure
    /// gates.
    fn admit(&self, tenant: &str) {
        self.in_flight.fetch_add(1, Ordering::SeqCst);
        *lock(&self.tenants).entry(tenant.to_owned()).or_insert(0) += 1;
    }

    /// Releases one admitted job and updates its terminal state.
    fn conclude(
        &self,
        id: u64,
        status: JobStatus,
        gates_pass: Option<bool>,
        failed_trials: u64,
        trials_run: u64,
        error: Option<String>,
    ) {
        let mut jobs = lock(&self.jobs);
        let Some(job) = jobs.get_mut(&id) else { return };
        job.status = status;
        job.gates_pass = gates_pass;
        job.failed_trials = failed_trials;
        job.trials_run = trials_run;
        job.error = error;
        let tenant = job.tenant.clone();
        drop(jobs);
        self.in_flight.fetch_sub(1, Ordering::SeqCst);
        let mut tenants = lock(&self.tenants);
        if let Some(count) = tenants.get_mut(&tenant) {
            *count = count.saturating_sub(1);
            if *count == 0 {
                tenants.remove(&tenant);
            }
        }
        Metrics::bump(match status {
            JobStatus::Failed => &self.metrics.jobs_failed,
            _ => &self.metrics.jobs_completed,
        });
    }

    /// Appends a warning line to a job's record.
    fn job_warn(&self, id: u64, message: &str) {
        if let Some(job) = lock(&self.jobs).get_mut(&id) {
            job.warnings.push(message.to_owned());
        }
    }
}

/// Marks a cache-hit job finished, copying the terminal facts out of
/// the committed `report.json`.
fn finish_from_cache(job: &mut JobState, dir: &std::path::Path) {
    job.status = JobStatus::Done;
    if let Ok(body) = std::fs::read_to_string(dir.join("report.json")) {
        if let Ok(report) = Json::parse(&body) {
            if report.get("job").and_then(|j| j.get("status")).and_then(Json::as_str)
                == Some("degraded")
            {
                job.status = JobStatus::Degraded;
            }
            job.gates_pass =
                report.get("gates").and_then(|g| g.get("pass")).and_then(Json::as_bool);
        }
    }
}

/// One sweep point: warmup, supervised trials, and — when this is the
/// job's last point — finalization.
fn point_task(inner: &Arc<Inner>, exec: &Arc<Exec>, p: usize) {
    {
        let mut jobs = lock(&inner.jobs);
        if let Some(job) = jobs.get_mut(&exec.job_id) {
            if job.status == JobStatus::Queued {
                job.status = JobStatus::Running;
            }
        }
    }
    // Warnings raised anywhere inside the point (journal trouble,
    // lenient env parses in downstream code) are attributed to the
    // job rather than interleaving on the server's stderr.
    let results = {
        let (sink_inner, id) = (Arc::clone(inner), exec.job_id);
        let sink: diag::Sink = Arc::new(move |msg: &str| sink_inner.job_warn(id, msg));
        diag::with_sink(sink, || {
            diag::with_context(&format!("job {}", exec.job_id), || {
                run_point(&exec.spec, p, &inner.metrics, &exec.trials_run)
            })
        })
    };
    lock(&exec.results).extend(results);
    if exec.remaining.fetch_sub(1, Ordering::SeqCst) == 1 {
        finalize(inner, exec);
    }
}

/// Converts a warmup failure into one stand-in failure per trial of
/// the point — the same fan-out [`Experiment::with_warmup`] performs.
fn fan_out(wf: &TrialFailure, p: usize, tpp: usize) -> Vec<(usize, Result<RowData, TrialFailure>)> {
    (0..tpp)
        .map(|t| {
            let i = p * tpp + t;
            (i, Err(TrialFailure { trial: i, ..wf.clone() }))
        })
        .collect()
}

/// Executes sweep point `p`: one supervised warmup, then
/// `trials_per_point` supervised trials forking the warmed snapshot.
fn run_point(
    spec: &SweepSpec,
    p: usize,
    metrics: &Metrics,
    trials_run: &AtomicU64,
) -> Vec<(usize, Result<RowData, TrialFailure>)> {
    let (kind, seed) = spec.point(p);
    let cfg = spec.build_config(kind);
    let tpp = spec.trials_per_point;
    // Warmups are supervised (a panicking channel plan degrades the
    // point, not the worker) but exempt from trial fault injection.
    let warm_policy =
        SupervisorPolicy { retries: spec.retries, backoff_ms: 0, ..SupervisorPolicy::default() };
    let trial_policy = SupervisorPolicy { inject: spec.fail_trials.clone(), ..warm_policy.clone() };
    Metrics::bump(&metrics.points_run);

    let run = |body: &dyn Fn(&mut SimRng, usize) -> RowData| {
        (0..tpp)
            .map(|t| {
                let i = p * tpp + t;
                Metrics::bump(&metrics.trials_run);
                trials_run.fetch_add(1, Ordering::Relaxed);
                let out = supervisor::supervise(&trial_policy, i, || {
                    let mut rng = SimRng::seed_from(seed).split(i as u64);
                    body(&mut rng, i)
                });
                let res = match out {
                    TrialOutcome::Done(row) => Ok(row),
                    TrialOutcome::Failed(f) => Err(f),
                };
                (i, res)
            })
            .collect()
    };

    match spec.victim {
        Victim::CovertT => {
            let warm = supervisor::supervise(&warm_policy, p, || {
                let mut wrng = SimRng::seed_from(seed).split(WARMUP_STREAM_BASE + p as u64);
                let preamble: Vec<bool> =
                    (0..spec.preamble_bits).map(|_| wrng.chance(0.5)).collect();
                let mut mem = SecureMemory::new(cfg.clone());
                let channel =
                    CovertChannelT::new(&mut mem, CoreId(0), CoreId(1), kind.covert_t_level(), 100)
                        .expect("channel setup");
                if !preamble.is_empty() {
                    channel.transmit(&mut mem, &preamble).expect("preamble transmission");
                }
                (mem.into_snapshot(), channel)
            });
            let (snap, channel) = match warm {
                TrialOutcome::Done(w) => w,
                TrialOutcome::Failed(wf) => return fan_out(&wf, p, tpp),
            };
            run(&|rng, _i| {
                let mut mem = snap.fork();
                let bits: Vec<bool> =
                    (0..spec.payload_per_trial).map(|_| rng.chance(0.5)).collect();
                let out = channel.transmit(&mut mem, &bits).expect("transmission");
                let samples = out.labelled_samples(&bits);
                RowData {
                    config: kind.name(),
                    seed,
                    point: p,
                    accuracy: out.accuracy(&bits),
                    alphabet: 2,
                    cycles_per_symbol: out.cycles.as_u64() as f64 / bits.len() as f64,
                    classes: samples.iter().map(|s| s.class).collect(),
                    values: samples.iter().map(|s| s.value).collect(),
                }
            })
        }
        Victim::CovertC => {
            let warm = supervisor::supervise(&warm_policy, p, || {
                let mem = SecureMemory::new(cfg.clone());
                let channel =
                    CovertChannelC::new(&mem, CoreId(0), CoreId(1), 1, 100).expect("channel setup");
                (mem.into_snapshot(), channel)
            });
            let (snap, channel) = match warm {
                TrialOutcome::Done(w) => w,
                TrialOutcome::Failed(wf) => return fan_out(&wf, p, tpp),
            };
            run(&|rng, _i| {
                let mut mem = snap.fork();
                let mut channel = channel.clone();
                let cap = channel.max_symbol() + 1;
                let symbols: Vec<u64> =
                    (0..spec.payload_per_trial).map(|_| rng.below(cap)).collect();
                let out = channel.transmit(&mut mem, &symbols).expect("transmission");
                let samples = out.labelled_samples(&symbols);
                RowData {
                    config: kind.name(),
                    seed,
                    point: p,
                    accuracy: out.accuracy(&symbols),
                    alphabet: cap,
                    cycles_per_symbol: out.cycles_per_symbol(),
                    classes: samples.iter().map(|s| s.class).collect(),
                    values: samples.iter().map(|s| s.value).collect(),
                }
            })
        }
    }
}

/// Commits a finished execution: artifacts through the harness sink,
/// in-process leakage assessment, gate evaluation, the `report.json`
/// commit record, and resolution of the leader plus every attached
/// waiter.
fn finalize(inner: &Arc<Inner>, exec: &Arc<Exec>) {
    let spec = &exec.spec;
    let mut results = std::mem::take(&mut *lock(&exec.results));
    results.sort_by_key(|&(i, _)| i);
    let mut trials = Vec::new();
    let mut failures = Vec::new();
    for (i, res) in results {
        match res {
            Ok(row) => trials.push(row.into_trial(i, spec.victim)),
            Err(f) => failures.push(f),
        }
    }
    let failed_trials = failures.len() as u64;
    let trials_run = exec.trials_run.load(Ordering::Relaxed);

    let settings = RunSettings {
        threads: 1,
        lanes: metaleak_bench::harness::default_lanes(),
        out_dir: Some(exec.dir.clone()),
        journal: false,
        ..RunSettings::default()
    };
    let exp = Experiment::with_settings(&spec.experiment, spec.artifact_seed(), settings)
        .config("victim", spec.victim.name())
        .config("configs", Json::Arr(spec.configs.iter().map(|c| Json::from(c.name())).collect()))
        .config("seeds", spec.seeds.clone())
        .config("trials_per_point", spec.trials_per_point)
        .config("payload_per_trial", spec.payload_per_trial)
        .config("content_key", exec.digest.as_str());
    for f in failures {
        exp.note_failure(f);
    }
    let report = match exp.finish(&trials) {
        Ok(report) => report,
        Err(e) => return fail_execution(inner, exec, format!("artifact commit failed: {e}")),
    };
    debug_assert_eq!(report.failures.len() as u64, failed_trials);

    let (body, gates_pass) = match assess(exec, failed_trials > 0) {
        Ok(out) => out,
        Err(msg) => return fail_execution(inner, exec, msg),
    };
    // The commit record: written strictly after every other artifact.
    if let Err(e) = std::fs::write(exec.dir.join("report.json"), body) {
        return fail_execution(inner, exec, format!("cannot write report.json: {e}"));
    }

    let status = if failed_trials > 0 { JobStatus::Degraded } else { JobStatus::Done };
    let waiters = inner.cache.commit(&exec.digest);
    inner.conclude(exec.job_id, status, Some(gates_pass), failed_trials, trials_run, None);
    for waiter in waiters {
        inner.conclude(waiter, status, Some(gates_pass), failed_trials, 0, None);
    }
}

/// Runs `leakscan` in-process over the execution's artifact directory
/// and renders the `report.json` body.
fn assess(exec: &Exec, degraded: bool) -> Result<(String, bool), String> {
    let spec = &exec.spec;
    let entries = ingest::scan_dir(&exec.dir)
        .map_err(|e| format!("cannot scan {}: {e}", exec.dir.display()))?;
    let policy = GatePolicy {
        require_leak: match spec.require {
            Requirement::Leak => vec![spec.experiment.clone()],
            _ => Vec::new(),
        },
        require_clean: match spec.require {
            Requirement::Clean => vec![spec.experiment.clone()],
            _ => Vec::new(),
        },
        strict: false,
        max_failed_trials: spec.max_failed_trials,
    };
    // Same degraded-artifact admission rule as the leakscan CLI: a
    // failure budget opts the assessment into surviving rows.
    let entries = gates::apply_degraded_policy(entries, policy.admits_degraded());
    let report = LeakReport::from_entries(&entries);
    let verdict = gates::evaluate(&report, &policy);
    let job = JsonObj::new()
        .field("experiment", spec.experiment.as_str())
        .field("content_key", exec.digest.as_str())
        .field("status", if degraded { "degraded" } else { "done" })
        .field("points", spec.points())
        .field("trials", spec.total_trials())
        .field("spec", spec.canonical())
        .build();
    let body = JsonObj::new()
        .field("job", job)
        .field("leakscan", report.to_json())
        .field("gates", verdict.to_json())
        .build()
        .render()
        + "\n";
    Ok((body, verdict.pass()))
}

/// Fails the leader and every attached waiter, vacating the cache
/// reservation so a future submission can retry.
fn fail_execution(inner: &Arc<Inner>, exec: &Arc<Exec>, error: String) {
    let trials_run = exec.trials_run.load(Ordering::Relaxed);
    let waiters = inner.cache.fail(&exec.digest);
    inner.conclude(exec.job_id, JobStatus::Failed, None, 0, trials_run, Some(error.clone()));
    for waiter in waiters {
        inner.conclude(waiter, JobStatus::Failed, None, 0, 0, Some(error.clone()));
    }
}
