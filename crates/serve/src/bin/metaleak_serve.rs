//! `metaleak-serve` — the leakage-assessment service binary.
//!
//! ```text
//! metaleak-serve [--addr HOST:PORT] [--workers N]
//!                [--queue-capacity N] [--tenant-quota N]
//!                [--cache-dir DIR]
//! ```
//!
//! Starts the sweep farm and serves the job API until killed. See the
//! crate docs ([`metaleak_serve`]) for the endpoints and
//! `DESIGN.md` §11 for the architecture.

use metaleak_serve::http::HttpServer;
use metaleak_serve::service::{Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;

fn usage() -> ! {
    eprintln!(
        "usage: metaleak-serve [--addr HOST:PORT] [--workers N] \
         [--queue-capacity N] [--tenant-quota N] [--cache-dir DIR]"
    );
    std::process::exit(1);
}

fn main() {
    let mut addr = "127.0.0.1:8991".to_owned();
    let mut cfg = ServerConfig::new(PathBuf::from("target/serve-cache"));
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("metaleak-serve: {flag} needs a value");
                usage()
            })
        };
        let parsed = |flag: &str, v: String| {
            v.parse::<usize>().unwrap_or_else(|_| {
                eprintln!("metaleak-serve: {flag} needs an integer");
                usage()
            })
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr"),
            "--workers" => cfg.workers = parsed("--workers", value("--workers")),
            "--queue-capacity" => {
                cfg.queue_capacity = parsed("--queue-capacity", value("--queue-capacity"))
            }
            "--tenant-quota" => {
                cfg.tenant_quota = parsed("--tenant-quota", value("--tenant-quota"))
            }
            "--cache-dir" => cfg.cache_dir = PathBuf::from(value("--cache-dir")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("metaleak-serve: unknown argument {other:?}");
                usage();
            }
        }
    }

    let server = match Server::start(cfg.clone()) {
        Ok(server) => Arc::new(server),
        Err(e) => {
            eprintln!("metaleak-serve: cannot start: {e}");
            std::process::exit(1);
        }
    };
    let http = match HttpServer::bind(&addr, Arc::clone(&server)) {
        Ok(http) => http,
        Err(e) => {
            eprintln!("metaleak-serve: cannot bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "metaleak-serve: listening on http://{} ({} worker(s), queue {}, quota {}/tenant, cache {})",
        http.addr(),
        cfg.workers,
        cfg.queue_capacity,
        cfg.tenant_quota,
        cfg.cache_dir.display()
    );
    loop {
        std::thread::park();
    }
}
