//! Service counters, exposed on `GET /metrics`.
//!
//! Plain relaxed atomics: every counter is monotonic and independent,
//! so readers tolerate slight skew between fields — the endpoint is a
//! monitoring surface, not a consistency protocol.

use metaleak_bench::json::{Json, JsonObj};
use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic counters describing everything the server has done.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Jobs accepted by `POST /jobs` (after validation, including
    /// cache hits and dedup attaches).
    pub jobs_submitted: AtomicU64,
    /// Jobs that reached `done` or `degraded`.
    pub jobs_completed: AtomicU64,
    /// Jobs that failed outright (artifact or scan errors).
    pub jobs_failed: AtomicU64,
    /// Submissions served entirely from the completed artifact cache.
    pub cache_hits: AtomicU64,
    /// Submissions attached to an identical in-flight execution.
    pub dedup_attached: AtomicU64,
    /// Supervised trial executions (attempts that ran a trial body;
    /// zero for cached or attached submissions).
    pub trials_run: AtomicU64,
    /// Sweep points executed (warmup + trial fan-out).
    pub points_run: AtomicU64,
    /// Submissions rejected because the admission queue was full.
    pub rejected_queue_full: AtomicU64,
    /// Submissions rejected by the per-tenant in-flight quota.
    pub rejected_tenant_quota: AtomicU64,
    /// Submissions rejected as invalid (unparsable or out-of-bounds
    /// specs).
    pub rejected_invalid: AtomicU64,
    /// HTTP requests handled (any route, any status).
    pub http_requests: AtomicU64,
}

impl Metrics {
    /// Bumps a counter by one.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n` to a counter.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Renders the counters as one flat JSON object.
    pub fn to_json(&self) -> Json {
        let get = |c: &AtomicU64| c.load(Ordering::Relaxed);
        JsonObj::new()
            .field("jobs_submitted", get(&self.jobs_submitted))
            .field("jobs_completed", get(&self.jobs_completed))
            .field("jobs_failed", get(&self.jobs_failed))
            .field("cache_hits", get(&self.cache_hits))
            .field("dedup_attached", get(&self.dedup_attached))
            .field("trials_run", get(&self.trials_run))
            .field("points_run", get(&self.points_run))
            .field("rejected_queue_full", get(&self.rejected_queue_full))
            .field("rejected_tenant_quota", get(&self.rejected_tenant_quota))
            .field("rejected_invalid", get(&self.rejected_invalid))
            .field("http_requests", get(&self.http_requests))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_render_flat() {
        let m = Metrics::default();
        Metrics::bump(&m.jobs_submitted);
        Metrics::add(&m.trials_run, 5);
        let json = m.to_json();
        assert_eq!(json.get("jobs_submitted").and_then(Json::as_u64), Some(1));
        assert_eq!(json.get("trials_run").and_then(Json::as_u64), Some(5));
        assert_eq!(json.get("cache_hits").and_then(Json::as_u64), Some(0));
    }
}
