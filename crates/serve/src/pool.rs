//! A work-stealing worker pool on plain `std::thread`.
//!
//! One double-ended queue per worker: [`WorkerPool::submit`] deals
//! tasks round-robin across the shards, each worker pops from the
//! front of its own shard and, when empty, steals from the *back* of
//! the other shards — so a worker stuck on a slow sweep point cannot
//! strand the tasks queued behind it while its peers idle.
//!
//! Tasks run under `catch_unwind`: a panicking task (the supervisor
//! already isolates trial bodies, so this is a second fence around
//! the job glue itself) is counted and dropped, and the worker keeps
//! serving. A pool built with zero workers accepts tasks but never
//! runs them — the backpressure tests use this to fill the admission
//! queue deterministically.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

type Task = Box<dyn FnOnce() + Send + 'static>;

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

struct Shared {
    /// One deque per worker; a zero-worker pool keeps a single shard
    /// so submissions still have somewhere to queue.
    shards: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks submitted but not yet started.
    pending: AtomicUsize,
    /// Pool is shutting down; workers drain their shards and exit.
    shutdown: AtomicBool,
    /// Round-robin dealing cursor.
    next: AtomicUsize,
    /// Tasks whose closure panicked through the `catch_unwind` fence.
    panicked: AtomicU64,
    /// Sleep/wake signal for idle workers.
    signal: Mutex<()>,
    cv: Condvar,
}

/// A fixed-size work-stealing thread pool.
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: usize,
    handles: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers)
            .field("pending", &self.shared.pending.load(Ordering::Relaxed))
            .finish()
    }
}

impl WorkerPool {
    /// Spawns `workers` threads. Zero is allowed: tasks queue forever
    /// (until the pool is dropped), which tests use to hold the
    /// admission queue full.
    pub fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            shards: (0..workers.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            next: AtomicUsize::new(0),
            panicked: AtomicU64::new(0),
            signal: Mutex::new(()),
            cv: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|w| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("serve-worker-{w}"))
                    .spawn(move || worker_loop(&shared, w))
                    .expect("spawn worker thread")
            })
            .collect();
        WorkerPool { shared, workers, handles }
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Tasks submitted but not yet started.
    pub fn pending(&self) -> usize {
        self.shared.pending.load(Ordering::Relaxed)
    }

    /// Tasks that panicked through the worker fence.
    pub fn panicked(&self) -> u64 {
        self.shared.panicked.load(Ordering::Relaxed)
    }

    /// Queues a task on the next shard (round-robin).
    pub fn submit(&self, task: impl FnOnce() + Send + 'static) {
        let shard = self.shared.next.fetch_add(1, Ordering::Relaxed) % self.shared.shards.len();
        self.submit_to(shard, task);
    }

    /// Queues a task on a specific shard — exposed so tests can force
    /// an imbalance and observe stealing.
    pub fn submit_to(&self, shard: usize, task: impl FnOnce() + Send + 'static) {
        let shard = shard % self.shared.shards.len();
        lock(&self.shared.shards[shard]).push_back(Box::new(task));
        self.shared.pending.fetch_add(1, Ordering::SeqCst);
        let _guard = lock(&self.shared.signal);
        self.shared.cv.notify_all();
    }
}

impl Drop for WorkerPool {
    /// Drains: workers finish every queued task, then exit.
    fn drop(&mut self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        {
            let _guard = lock(&self.shared.signal);
            self.shared.cv.notify_all();
        }
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

fn worker_loop(shared: &Shared, w: usize) {
    loop {
        match take_task(shared, w) {
            Some(task) => {
                shared.pending.fetch_sub(1, Ordering::SeqCst);
                if catch_unwind(AssertUnwindSafe(task)).is_err() {
                    shared.panicked.fetch_add(1, Ordering::Relaxed);
                }
            }
            None => {
                if shared.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                // Timed wait bounds any lost-wakeup window; the
                // condvar is the fast path, the timeout the backstop.
                let guard = lock(&shared.signal);
                let _ = shared.cv.wait_timeout(guard, Duration::from_millis(20));
            }
        }
    }
}

/// Pops from the worker's own shard front, else steals from the back
/// of the other shards (oldest-first victims).
fn take_task(shared: &Shared, w: usize) -> Option<Task> {
    if let Some(task) = lock(&shared.shards[w]).pop_front() {
        return Some(task);
    }
    let n = shared.shards.len();
    for off in 1..n {
        if let Some(task) = lock(&shared.shards[(w + off) % n]).pop_back() {
            return Some(task);
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_tasks_run_and_drop_drains() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(3);
            for _ in 0..50 {
                let c = counter.clone();
                pool.submit(move || {
                    c.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop joins after draining
        assert_eq!(counter.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn idle_workers_steal_from_a_loaded_shard() {
        // Every task is pinned to shard 0 of a two-worker pool. The
        // blocker parks whichever worker grabs it until all probes
        // are done, so worker 0 cannot run all 13 tasks by itself —
        // at least one task must execute on worker 1, and any shard-0
        // task on worker 1 is by definition a steal.
        let pool = WorkerPool::new(2);
        let ran_on: Arc<Mutex<Vec<String>>> = Arc::new(Mutex::new(Vec::new()));
        let gate = Arc::new(AtomicBool::new(false));
        let (g, names) = (gate.clone(), ran_on.clone());
        pool.submit_to(0, move || {
            names.lock().unwrap().push(std::thread::current().name().unwrap_or("?").to_owned());
            while !g.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        for _ in 0..12 {
            let names = ran_on.clone();
            pool.submit_to(0, move || {
                names.lock().unwrap().push(std::thread::current().name().unwrap_or("?").to_owned());
            });
        }
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while ran_on.lock().unwrap().len() < 13 {
            assert!(std::time::Instant::now() < deadline, "steals never happened");
            std::thread::sleep(Duration::from_millis(5));
        }
        gate.store(true, Ordering::SeqCst);
        let names = ran_on.lock().unwrap();
        assert!(
            names.iter().any(|n| n != "serve-worker-0"),
            "shard 0's tasks all ran on its owner: {names:?}"
        );
    }

    #[test]
    fn panicking_task_is_counted_and_worker_survives() {
        let pool = WorkerPool::new(1);
        let after = Arc::new(AtomicUsize::new(0));
        pool.submit(|| panic!("task panic"));
        let a = after.clone();
        pool.submit(move || {
            a.fetch_add(1, Ordering::SeqCst);
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while after.load(Ordering::SeqCst) == 0 {
            assert!(std::time::Instant::now() < deadline, "worker died after panic");
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(pool.panicked(), 1);
    }

    #[test]
    fn zero_worker_pool_queues_without_running() {
        let pool = WorkerPool::new(0);
        let ran = Arc::new(AtomicUsize::new(0));
        let r = ran.clone();
        pool.submit(move || {
            r.fetch_add(1, Ordering::SeqCst);
        });
        std::thread::sleep(Duration::from_millis(30));
        assert_eq!(ran.load(Ordering::SeqCst), 0);
        assert_eq!(pool.pending(), 1);
    }
}
