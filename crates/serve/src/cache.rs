//! The content-addressed artifact cache.
//!
//! One directory per content key (`<root>/<digest>/`) holding the
//! experiment's `<name>.jsonl`, `<name>.meta.json` and the server's
//! `report.json`. `report.json` doubles as the cache's own commit
//! record: it is written strictly after the experiment artifacts, so
//! a directory containing it is complete by construction — the same
//! write-last discipline the harness uses for its meta sidecar.
//! [`ArtifactCache::open`] rescans the root on startup, readmitting
//! committed entries and sweeping partial ones, which makes the cache
//! durable across server restarts.
//!
//! In-flight deduplication happens in the in-memory index: the first
//! reservation for a key becomes the *leader* (it executes the
//! sweep); identical reservations arriving before the leader commits
//! *attach* as waiters and are completed or failed together with it.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::{Mutex, PoisonError};

/// What a reservation attempt resolved to.
#[derive(Debug, PartialEq, Eq)]
pub enum Reservation {
    /// The artifacts are committed on disk; serve them from this
    /// directory without executing anything.
    Hit(PathBuf),
    /// The caller is the leader: it must run the sweep into
    /// [`ArtifactCache::dir`] and then [`ArtifactCache::commit`] or
    /// [`ArtifactCache::fail`] the key.
    Lead(PathBuf),
    /// An identical execution is in flight; the caller was attached
    /// as a waiter and will be resolved by the leader's commit/fail.
    Wait,
}

enum Entry {
    Building { waiters: Vec<u64> },
    Ready,
}

/// A content-addressed, restart-durable artifact store with in-flight
/// request coalescing.
#[derive(Debug)]
pub struct ArtifactCache {
    root: PathBuf,
    index: Mutex<HashMap<String, Entry>>,
}

impl std::fmt::Debug for Entry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Entry::Building { waiters } => write!(f, "Building({} waiters)", waiters.len()),
            Entry::Ready => write!(f, "Ready"),
        }
    }
}

fn valid_digest(digest: &str) -> bool {
    digest.len() == 64 && digest.bytes().all(|b| b.is_ascii_hexdigit())
}

impl ArtifactCache {
    /// Opens (creating) the cache root and rescans it: subdirectories
    /// with a committed `report.json` become ready entries, partial
    /// ones (a crash between artifact and commit writes) are removed.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root)?;
        let mut index = HashMap::new();
        for entry in std::fs::read_dir(&root)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if !entry.file_type()?.is_dir() || !valid_digest(&name) {
                continue;
            }
            if entry.path().join("report.json").is_file() {
                index.insert(name, Entry::Ready);
            } else {
                // No commit record: sweep the torn leftovers so a
                // future lease starts from an empty directory.
                let _ = std::fs::remove_dir_all(entry.path());
            }
        }
        Ok(ArtifactCache { root, index: Mutex::new(index) })
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, HashMap<String, Entry>> {
        self.index.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// The artifact directory for a content key.
    pub fn dir(&self, digest: &str) -> PathBuf {
        self.root.join(digest)
    }

    /// Number of committed entries.
    pub fn ready_entries(&self) -> usize {
        self.lock().values().filter(|e| matches!(e, Entry::Ready)).count()
    }

    /// A non-reserving lookup: the committed directory, when `digest`
    /// is ready. The fast path for serving cache hits without
    /// touching admission.
    pub fn peek(&self, digest: &str) -> Option<PathBuf> {
        match self.lock().get(digest) {
            Some(Entry::Ready) => Some(self.dir(digest)),
            _ => None,
        }
    }

    /// Resolves `digest` for job `job_id`: a committed entry is a
    /// [`Reservation::Hit`], an in-flight one attaches the job as a
    /// waiter ([`Reservation::Wait`]), and a vacant one makes the job
    /// the leader ([`Reservation::Lead`]).
    pub fn reserve(&self, digest: &str, job_id: u64) -> Reservation {
        let mut index = self.lock();
        match index.get_mut(digest) {
            Some(Entry::Ready) => Reservation::Hit(self.dir(digest)),
            Some(Entry::Building { waiters }) => {
                waiters.push(job_id);
                Reservation::Wait
            }
            None => {
                index.insert(digest.to_owned(), Entry::Building { waiters: Vec::new() });
                Reservation::Lead(self.dir(digest))
            }
        }
    }

    /// Commits a led entry: the artifacts (including `report.json`)
    /// are on disk. Returns the attached waiter job ids, which the
    /// caller completes against the same directory.
    pub fn commit(&self, digest: &str) -> Vec<u64> {
        let mut index = self.lock();
        match index.insert(digest.to_owned(), Entry::Ready) {
            Some(Entry::Building { waiters }) => waiters,
            _ => Vec::new(),
        }
    }

    /// Abandons a led entry (execution or admission failure): the key
    /// is vacated so a later submission can lead again, the partial
    /// directory is swept, and the attached waiters are returned for
    /// the caller to fail.
    pub fn fail(&self, digest: &str) -> Vec<u64> {
        let waiters = {
            let mut index = self.lock();
            match index.get(digest) {
                // Failing a committed key would be a caller bug; keep
                // the committed artifacts.
                Some(Entry::Ready) => return Vec::new(),
                Some(Entry::Building { .. }) => match index.remove(digest) {
                    Some(Entry::Building { waiters }) => waiters,
                    _ => unreachable!("entry kind checked under the same lock"),
                },
                None => Vec::new(),
            }
        };
        let _ = std::fs::remove_dir_all(self.dir(digest));
        waiters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest(tag: u8) -> String {
        let mut s = String::new();
        for _ in 0..32 {
            s.push_str(&format!("{tag:02x}"));
        }
        s
    }

    fn scratch(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("metaleak_cache_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn lead_commit_hit_lifecycle() {
        let root = scratch("lifecycle");
        let cache = ArtifactCache::open(&root).unwrap();
        let d = digest(0xaa);
        let Reservation::Lead(dir) = cache.reserve(&d, 1) else {
            panic!("first reservation must lead");
        };
        // Two identical submissions attach while the leader runs.
        assert_eq!(cache.reserve(&d, 2), Reservation::Wait);
        assert_eq!(cache.reserve(&d, 3), Reservation::Wait);
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("report.json"), "{}").unwrap();
        assert_eq!(cache.commit(&d), vec![2, 3]);
        assert_eq!(cache.reserve(&d, 4), Reservation::Hit(dir));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn fail_vacates_and_returns_waiters() {
        let root = scratch("fail");
        let cache = ArtifactCache::open(&root).unwrap();
        let d = digest(0xbb);
        let Reservation::Lead(dir) = cache.reserve(&d, 1) else { panic!("lead") };
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("partial.jsonl"), "torn").unwrap();
        assert_eq!(cache.reserve(&d, 2), Reservation::Wait);
        assert_eq!(cache.fail(&d), vec![2]);
        assert!(!dir.exists(), "failed lease must sweep its partial directory");
        // The key is leasable again.
        assert!(matches!(cache.reserve(&d, 3), Reservation::Lead(_)));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn reopen_readmits_committed_and_sweeps_partial_entries() {
        let root = scratch("reopen");
        let committed = digest(0xcc);
        let torn = digest(0xdd);
        {
            let cache = ArtifactCache::open(&root).unwrap();
            for (d, commit) in [(&committed, true), (&torn, false)] {
                let Reservation::Lead(dir) = cache.reserve(d, 1) else { panic!("lead") };
                std::fs::create_dir_all(&dir).unwrap();
                std::fs::write(dir.join("x.jsonl"), "rows").unwrap();
                if commit {
                    std::fs::write(dir.join("report.json"), "{}").unwrap();
                    cache.commit(d);
                }
            }
        }
        let cache = ArtifactCache::open(&root).unwrap();
        assert_eq!(cache.ready_entries(), 1);
        assert!(matches!(cache.reserve(&committed, 9), Reservation::Hit(_)));
        assert!(matches!(cache.reserve(&torn, 9), Reservation::Lead(_)));
        assert!(!root.join(&torn).join("x.jsonl").exists(), "torn entry must be swept");
        let _ = std::fs::remove_dir_all(&root);
    }
}
