//! The hand-rolled HTTP/1.1 front end.
//!
//! Minimal by design (the workspace has no external dependencies):
//! `Content-Length` bodies only, `Connection: close` on every
//! response, one thread per connection. The routes are a thin wire
//! adapter over [`Server`] — all behaviour
//! (validation, backpressure, caching) lives in [`crate::service`].
//!
//! Tenancy is taken from the `X-Tenant` request header; absent, the
//! submission is booked under `"public"`.

use crate::service::{FetchError, Server, SubmitError};
use metaleak_bench::json::{Json, JsonObj};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Upper bound on request head (request line + headers) bytes.
const MAX_HEAD: usize = 16 * 1024;

/// Upper bound on request body bytes.
const MAX_BODY: usize = 1024 * 1024;

/// A running HTTP front end bound to a local address.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer").field("addr", &self.addr).finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) and
    /// starts accepting connections against `server`.
    pub fn bind(addr: &str, server: Arc<Server>) -> std::io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let accept_stop = Arc::clone(&stop);
        let accept_thread =
            std::thread::Builder::new().name("serve-accept".to_owned()).spawn(move || {
                for stream in listener.incoming() {
                    if accept_stop.load(Ordering::SeqCst) {
                        return;
                    }
                    let Ok(stream) = stream else { continue };
                    let server = Arc::clone(&server);
                    let _ = std::thread::Builder::new()
                        .name("serve-conn".to_owned())
                        .spawn(move || handle_connection(stream, &server));
                }
            })?;
        Ok(HttpServer { addr, stop, accept_thread: Some(accept_thread) })
    }

    /// The bound address (useful with port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. In-flight
    /// connection threads finish their single request.
    pub fn shutdown(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // Unblock the accept loop with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// One parsed request.
struct Request {
    method: String,
    path: String,
    tenant: String,
    body: String,
}

fn handle_connection(stream: TcpStream, server: &Server) {
    let mut stream = stream;
    let response = match read_request(&stream) {
        Ok(req) => route(server, &req),
        Err(status) => {
            (status, JsonObj::new().field("error", "malformed request").build().render())
        }
    };
    let (status, body) = response;
    let reason = match status {
        200 => "OK",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        _ => "Unknown",
    };
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads and parses one request; `Err` carries the HTTP status to
/// answer with.
fn read_request(stream: &TcpStream) -> Result<Request, u16> {
    let mut reader = BufReader::new(stream);
    let mut head = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|_| 400u16)?;
        if n == 0 {
            return Err(400);
        }
        head.push_str(&line);
        if head.len() > MAX_HEAD {
            return Err(413);
        }
        if line == "\r\n" || line == "\n" {
            break;
        }
    }
    let mut lines = head.lines();
    let request_line = lines.next().ok_or(400u16)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or(400u16)?.to_owned();
    let path = parts.next().ok_or(400u16)?.to_owned();
    let mut tenant = "public".to_owned();
    let mut content_length = 0usize;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("x-tenant") && !value.is_empty() {
            tenant = value.to_owned();
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| 400u16)?;
        }
    }
    if content_length > MAX_BODY {
        return Err(413);
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|_| 400u16)?;
    let body = String::from_utf8(body).map_err(|_| 400u16)?;
    Ok(Request { method, path, tenant, body })
}

fn error_body(message: &str) -> String {
    JsonObj::new().field("error", message).build().render()
}

/// Dispatches one request to the service layer.
fn route(server: &Server, req: &Request) -> (u16, String) {
    crate::metrics::Metrics::bump(&server.metrics().http_requests);
    let segments: Vec<&str> =
        req.path.split('?').next().unwrap_or("").split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("POST", ["jobs"]) => match server.submit(&req.tenant, &req.body) {
            Ok(id) => {
                let job = server.job_json(id).unwrap_or(Json::Null);
                (202, job.render())
            }
            Err(SubmitError::Invalid(msg)) => (400, error_body(&msg)),
            Err(SubmitError::QueueFull) => (
                429,
                JsonObj::new()
                    .field("error", "admission queue full")
                    .field("reason", "queue-full")
                    .build()
                    .render(),
            ),
            Err(SubmitError::TenantQuota) => (
                429,
                JsonObj::new()
                    .field("error", "tenant in-flight quota exhausted")
                    .field("reason", "tenant-quota")
                    .build()
                    .render(),
            ),
        },
        ("GET", ["jobs", id]) => match id.parse::<u64>().ok().and_then(|id| server.job_json(id)) {
            Some(job) => (200, job.render()),
            None => (404, error_body("no such job")),
        },
        ("GET", ["jobs", id, "report"]) => match id.parse::<u64>() {
            Ok(id) => match server.report(id) {
                Ok(body) => (200, body),
                Err(e) => fetch_error(e),
            },
            Err(_) => (404, error_body("no such job")),
        },
        ("GET", ["jobs", id, "artifact", kind]) => match id.parse::<u64>() {
            Ok(id) => match server.artifact(id, kind) {
                Ok(bytes) => (200, String::from_utf8_lossy(&bytes).into_owned()),
                Err(e) => fetch_error(e),
            },
            Err(_) => (404, error_body("no such job")),
        },
        ("GET", ["metrics"]) => (200, server.metrics().to_json().render()),
        ("GET", ["healthz"]) => (200, JsonObj::new().field("ok", true).build().render()),
        ("POST", _) | ("GET", _) => (404, error_body("no such route")),
        _ => (405, error_body("method not allowed")),
    }
}

fn fetch_error(e: FetchError) -> (u16, String) {
    match e {
        FetchError::NotFound => (404, error_body("no such job or artifact")),
        FetchError::NotFinished => (409, error_body("job not finished")),
        FetchError::Failed(msg) => (500, error_body(&msg)),
    }
}
