//! `metaleak-serve` — leakage assessment as a service.
//!
//! A self-contained sweep farm: clients POST covert-channel sweep
//! specifications as JSON, a work-stealing worker pool shards the
//! sweep points across threads (each point warms one
//! [`metaleak_engine::snapshot::Snapshot`] and forks it per trial),
//! trials run under the [`metaleak_bench::supervisor`] so a panicking
//! trial degrades its job instead of the server, and the finished
//! artifacts — the same `<name>.jsonl` / `<name>.meta.json` commit
//! records the figure binaries emit — land in a content-addressed
//! cache keyed on the canonical spec, its seed streams and the
//! engine's [`metaleak_engine::STATE_SHAPE`] tag. Resubmitting an
//! identical spec (any tenant) is served from the cache with zero
//! trials executed and byte-identical artifacts; submitting while the
//! identical job is still running attaches to the in-flight execution
//! instead of duplicating it.
//!
//! The front end is a hand-rolled HTTP/1.1 server on
//! [`std::net::TcpListener`] (the workspace has no external
//! dependencies):
//!
//! | endpoint | behaviour |
//! |---|---|
//! | `POST /jobs` | submit a sweep spec; `202` with the job id, `400` on an invalid spec, `429` under backpressure |
//! | `GET /jobs/:id` | job status (queued/running/done/degraded/failed, trial counts, warnings) |
//! | `GET /jobs/:id/report` | the in-process `leakscan` report plus the typed gate verdict |
//! | `GET /jobs/:id/artifact/:kind` | raw cached artifact bytes (`jsonl`, `meta`, `report`) |
//! | `GET /metrics` | service counters (submissions, cache hits, trials run, rejections) |
//!
//! Backpressure is explicit: a bounded admission queue (`429` with
//! `"reason":"queue-full"`) and per-tenant in-flight quotas (`429`
//! with `"reason":"tenant-quota"`, keyed on the `X-Tenant` header).
//!
//! Layering: [`spec`] parses and canonicalizes sweep specifications,
//! [`pool`] is the work-stealing thread pool, [`cache`] the
//! content-addressed artifact store, [`service`] the job registry and
//! execution engine tying them together, [`http`] the wire front end,
//! and [`metrics`] the counters. Everything except [`http`] is usable
//! in-process — the integration tests drive [`service::Server`]
//! directly as well as over a socket.

#![deny(missing_docs)]
#![forbid(unsafe_code)]

pub mod cache;
pub mod http;
pub mod metrics;
pub mod pool;
pub mod service;
pub mod spec;

pub use service::{Server, ServerConfig, SubmitError};
pub use spec::SweepSpec;
