//! Integration tests for the leakage-assessment service: in-process
//! submission through `Server`, and end-to-end over the HTTP front
//! end. These exercise the acceptance criteria of the serve subsystem:
//! cache-hit determinism, backpressure and tenant quotas, and trial
//! failures degrading one job without poisoning the server.

use metaleak_bench::json::Json;
use metaleak_serve::http::HttpServer;
use metaleak_serve::{Server, ServerConfig, SubmitError};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

const WAIT: Duration = Duration::from_secs(60);

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("metaleak_serve_it_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn quick_spec(experiment: &str, seed: u64) -> String {
    format!(
        r#"{{"experiment":"{experiment}","victim":"covert_t","configs":["sct"],
            "seeds":[{seed}],"trials_per_point":2,"payload_per_trial":8,
            "preamble_bits":4,"require":"leak"}}"#
    )
}

fn server(tag: &str, workers: usize) -> (Server, PathBuf) {
    let dir = scratch(tag);
    let mut cfg = ServerConfig::new(&dir);
    cfg.workers = workers;
    (Server::start(cfg).expect("server start"), dir)
}

fn job_field<'a>(job: &'a Json, key: &str) -> &'a Json {
    job.get(key).unwrap_or_else(|| panic!("job json missing {key:?}"))
}

#[test]
fn resubmitted_spec_is_served_from_cache_without_trials() {
    let (server, dir) = server("cachehit", 2);
    let spec = quick_spec("svc-cache", 41);

    let first = server.submit("alice", &spec).expect("first submit");
    assert!(server.wait(first, WAIT).expect("first finishes").finished());
    let job1 = server.job_json(first).unwrap();
    assert_eq!(job_field(&job1, "status").as_str(), Some("done"));
    assert_eq!(job_field(&job1, "cache_hit").as_bool(), Some(false));
    let trials_before = server.metrics().trials_run.load(Ordering::SeqCst);
    assert!(trials_before > 0, "the leader must actually run trials");
    let jsonl1 = server.artifact(first, "jsonl").expect("jsonl");
    let report1 = server.report(first).expect("report");

    // Identical resubmission — different tenant, same content key.
    let second = server.submit("bob", &spec).expect("resubmit");
    let status = server.wait(second, WAIT).expect("hit finishes immediately");
    assert!(status.finished());
    let job2 = server.job_json(second).unwrap();
    assert_eq!(job_field(&job2, "cache_hit").as_bool(), Some(true));
    assert_eq!(job_field(&job2, "trials_run").as_u64(), Some(0));
    assert_eq!(
        job_field(&job1, "content_key").as_str(),
        job_field(&job2, "content_key").as_str(),
        "identical specs must share a content key"
    );
    assert_eq!(
        server.metrics().trials_run.load(Ordering::SeqCst),
        trials_before,
        "a cache hit must not execute any trial"
    );
    assert_eq!(server.metrics().cache_hits.load(Ordering::SeqCst), 1);

    // Byte-identical artifacts out of the cache.
    assert_eq!(jsonl1, server.artifact(second, "jsonl").expect("cached jsonl"));
    assert_eq!(report1, server.report(second).expect("cached report"));

    // Perturbing one seed changes the content key: a miss, new trials.
    let third = server.submit("alice", &quick_spec("svc-cache", 42)).expect("mutated submit");
    assert!(server.wait(third, WAIT).expect("mutated finishes").finished());
    let job3 = server.job_json(third).unwrap();
    assert_eq!(job_field(&job3, "cache_hit").as_bool(), Some(false));
    assert_ne!(
        job_field(&job1, "content_key").as_str(),
        job_field(&job3, "content_key").as_str(),
        "changing a seed must change the content key"
    );
    assert!(server.metrics().trials_run.load(Ordering::SeqCst) > trials_before);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn independent_servers_produce_byte_identical_artifacts() {
    // Two fresh servers with different worker counts and empty caches:
    // the deterministic seeding must make their JSONL and report bytes
    // identical, which is the property the content-addressed cache
    // relies on.
    let (a, dir_a) = server("det_a", 1);
    let (b, dir_b) = server("det_b", 3);
    let spec = quick_spec("svc-det", 1234);
    let ja = a.submit("t", &spec).expect("submit a");
    let jb = b.submit("t", &spec).expect("submit b");
    assert!(a.wait(ja, WAIT).expect("a finishes").finished());
    assert!(b.wait(jb, WAIT).expect("b finishes").finished());
    assert_eq!(
        a.artifact(ja, "jsonl").unwrap(),
        b.artifact(jb, "jsonl").unwrap(),
        "rows must not depend on worker count or server instance"
    );
    assert_eq!(a.report(ja).unwrap(), b.report(jb).unwrap());
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

#[test]
fn queue_capacity_and_tenant_quota_reject_submissions() {
    // Zero workers: admitted jobs stay queued forever, so the gates
    // can be filled deterministically.
    let dir = scratch("backpressure");
    let cfg =
        ServerConfig { workers: 0, queue_capacity: 3, tenant_quota: 2, cache_dir: dir.clone() };
    let server = Server::start(cfg).expect("server start");

    // Tenant quota trips first: alice gets two jobs in flight, the
    // third is rejected even though the queue still has room.
    server.submit("alice", &quick_spec("svc-bp", 1)).expect("alice #1");
    server.submit("alice", &quick_spec("svc-bp", 2)).expect("alice #2");
    assert_eq!(
        server.submit("alice", &quick_spec("svc-bp", 3)),
        Err(SubmitError::TenantQuota),
        "third in-flight job must trip the tenant quota"
    );
    assert_eq!(server.metrics().rejected_tenant_quota.load(Ordering::SeqCst), 1);

    // Another tenant is unaffected — until the global queue fills.
    server.submit("bob", &quick_spec("svc-bp", 4)).expect("bob #1");
    assert_eq!(
        server.submit("carol", &quick_spec("svc-bp", 5)),
        Err(SubmitError::QueueFull),
        "fourth in-flight job must trip the queue bound"
    );
    assert_eq!(server.metrics().rejected_queue_full.load(Ordering::SeqCst), 1);

    // An invalid body is rejected without consuming capacity.
    assert!(matches!(server.submit("dave", "{not json"), Err(SubmitError::Invalid(_))));
    assert_eq!(server.metrics().rejected_invalid.load(Ordering::SeqCst), 1);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn injected_trial_failures_degrade_the_job_not_the_server() {
    let (server, dir) = server("poison", 2);
    // Trial 1 of 4 is injected to panic inside the supervisor.
    let spec = r#"{"experiment":"svc-poison","victim":"covert_t","configs":["sct","ht"],
        "seeds":[9],"trials_per_point":2,"payload_per_trial":8,"preamble_bits":4,
        "fail_trials":[1],"max_failed_trials":1,"require":"leak"}"#;
    let id = server.submit("mallory", spec).expect("submit");
    let status = server.wait(id, WAIT).expect("finishes");
    assert_eq!(status.name(), "degraded");
    let job = server.job_json(id).unwrap();
    assert_eq!(job_field(&job, "failed_trials").as_u64(), Some(1));
    // The failure budget admits the degraded artifact, so the gate
    // verdict is still evaluated over the surviving rows.
    assert!(job_field(&job, "gates_pass").as_bool().is_some());
    let report: Json = Json::parse(&server.report(id).unwrap()).expect("report parses");
    assert_eq!(
        report.get("job").and_then(|j| j.get("status")).and_then(Json::as_str),
        Some("degraded")
    );

    // The server keeps serving: a healthy job after the poisoned one
    // completes cleanly on the same workers.
    let next = server.submit("mallory", &quick_spec("svc-after-poison", 5)).expect("submit");
    assert_eq!(server.wait(next, WAIT).expect("finishes").name(), "done");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A one-shot `Connection: close` HTTP client for the end-to-end test.
fn http(addr: &std::net::SocketAddr, request: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(request.as_bytes()).expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed response: {response:?}"));
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_owned()).unwrap_or_default();
    (status, body)
}

fn post_job(addr: &std::net::SocketAddr, tenant: &str, spec: &str) -> (u16, String) {
    http(
        addr,
        &format!(
            "POST /jobs HTTP/1.1\r\nHost: x\r\nX-Tenant: {tenant}\r\n\
             Content-Length: {}\r\nConnection: close\r\n\r\n{spec}",
            spec.len()
        ),
    )
}

fn get(addr: &std::net::SocketAddr, path: &str) -> (u16, String) {
    http(addr, &format!("GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n"))
}

#[test]
fn http_round_trip_submits_polls_and_hits_the_cache() {
    let (server, dir) = server("http", 2);
    let server = Arc::new(server);
    let mut front = HttpServer::bind("127.0.0.1:0", Arc::clone(&server)).expect("bind");
    let addr = front.addr();

    let (status, body) = get(&addr, "/healthz");
    assert_eq!(status, 200, "healthz: {body}");

    let spec = quick_spec("svc-http", 77);
    let (status, body) = post_job(&addr, "alice", &spec);
    assert_eq!(status, 202, "submit: {body}");
    let job = Json::parse(&body).expect("job json");
    let id = job.get("id").and_then(Json::as_u64).expect("job id");

    // Poll until terminal.
    let deadline = std::time::Instant::now() + WAIT;
    let terminal = loop {
        let (status, body) = get(&addr, &format!("/jobs/{id}"));
        assert_eq!(status, 200, "poll: {body}");
        let job = Json::parse(&body).expect("poll json");
        let state = job.get("status").and_then(Json::as_str).unwrap_or("?").to_owned();
        if state != "queued" && state != "running" {
            break state;
        }
        assert!(std::time::Instant::now() < deadline, "job never finished");
        std::thread::sleep(Duration::from_millis(10));
    };
    assert_eq!(terminal, "done");

    let (status, report1) = get(&addr, &format!("/jobs/{id}/report"));
    assert_eq!(status, 200, "report: {report1}");
    let report = Json::parse(&report1).expect("report json");
    assert!(
        report.get("gates").and_then(|g| g.get("pass")).and_then(Json::as_bool).is_some(),
        "report must carry a gate verdict: {report1}"
    );

    // Resubmission over the wire: immediate cache hit, same bytes.
    let (status, body) = post_job(&addr, "bob", &spec);
    assert_eq!(status, 202, "resubmit: {body}");
    let hit = Json::parse(&body).expect("hit json");
    assert_eq!(hit.get("cache_hit").and_then(Json::as_bool), Some(true));
    assert_eq!(hit.get("status").and_then(Json::as_str), Some("done"));
    let hit_id = hit.get("id").and_then(Json::as_u64).expect("hit id");
    let (status, report2) = get(&addr, &format!("/jobs/{hit_id}/report"));
    assert_eq!(status, 200);
    assert_eq!(report1, report2, "cached report must be byte-identical");

    // Metrics reflect the session; bad routes and bodies get clean
    // HTTP errors.
    let (status, body) = get(&addr, "/metrics");
    assert_eq!(status, 200);
    let metrics = Json::parse(&body).expect("metrics json");
    assert_eq!(metrics.get("cache_hits").and_then(Json::as_u64), Some(1));
    assert_eq!(get(&addr, "/jobs/999999").0, 404);
    assert_eq!(get(&addr, "/nope").0, 404);
    assert_eq!(post_job(&addr, "alice", "{broken").0, 400);

    front.shutdown();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn restarted_server_serves_the_previous_run_from_disk() {
    // Cache durability: a second server process over the same cache
    // root answers the identical spec without re-executing.
    let dir = scratch("restart");
    let spec = quick_spec("svc-restart", 404);
    let (jsonl, report) = {
        let srv = Server::start(ServerConfig::new(&dir)).expect("first server");
        let id = srv.submit("t", &spec).expect("submit");
        assert!(srv.wait(id, WAIT).expect("finishes").finished());
        (srv.artifact(id, "jsonl").unwrap(), srv.report(id).unwrap())
    };
    let srv = Server::start(ServerConfig::new(&dir)).expect("second server");
    let id = srv.submit("t", &spec).expect("resubmit");
    let job = srv.job_json(id).unwrap();
    assert_eq!(job_field(&job, "cache_hit").as_bool(), Some(true));
    assert_eq!(srv.metrics().trials_run.load(Ordering::SeqCst), 0);
    assert_eq!(srv.artifact(id, "jsonl").unwrap(), jsonl);
    assert_eq!(srv.report(id).unwrap(), report);
    let _ = std::fs::remove_dir_all(&dir);
}
