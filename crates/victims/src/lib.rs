//! # metaleak-victims
//!
//! Victim workloads for the MetaLeak case studies, implemented from
//! scratch so the leaking control flow is genuine:
//!
//! - [`bignum`] — arbitrary-precision arithmetic (the substrate);
//! - [`rsa`] — libgcrypt-style RSA with square-and-multiply modular
//!   exponentiation (§VIII-B1, Listing 2);
//! - [`modinv`] — mbedTLS-style binary extended-Euclidean modular
//!   inversion with the `shift_r`/`sub_mpi` gadget (§VIII-B2);
//! - [`jpeg`] — a libjpeg-style encoder with the `encode_one_block`
//!   zero/non-zero coefficient gadget (§VIII-A, Listing 1), plus the
//!   attacker's image-reconstruction pipeline.
//!
//! The victims are pure algorithms that *emit their secret-dependent
//! access traces* through observer callbacks ([`trace`] provides the
//! replayable, serializable trace + page-map layer); the case-study
//! glue maps those events onto simulated pages and drives the MetaLeak
//! monitors.

#![warn(missing_docs)]

pub mod bignum;
pub mod jpeg;
pub mod modinv;
pub mod rsa;
pub mod trace;

pub use bignum::BigUint;
pub use jpeg::GrayImage;
pub use rsa::RsaKey;

/// Fraction of positions where two sequences agree.
///
/// # Panics
/// Panics on length mismatch or empty input.
pub fn accuracy_of<T: PartialEq>(observed: &[T], truth: &[T]) -> f64 {
    assert_eq!(observed.len(), truth.len(), "length mismatch");
    assert!(!truth.is_empty(), "empty sequences");
    observed.iter().zip(truth).filter(|(a, b)| a == b).count() as f64 / truth.len() as f64
}
