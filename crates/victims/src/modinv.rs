//! The mbedTLS-style modular-inversion victim (§VIII-B2): private-key
//! loading computes `d = e^{-1} mod (p-1)(q-1)` with the binary
//! extended Euclidean algorithm, whose *right-shift* and *subtract*
//! sequence (`mbedtls_mpi_shift_r` / `mbedtls_mpi_sub_mpi`) depends on
//! the secret operands and leaks through page-access monitoring.

use crate::bignum::BigUint;

/// One observable operation of the inversion (each lives on its own
/// code page in mbedTLS 3.4.0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvOp {
    /// `mbedtls_mpi_shift_r` — a halving step.
    ShiftR,
    /// `mbedtls_mpi_sub_mpi` — a subtraction step.
    Sub,
}

/// Signed big integer for the extended-GCD bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Signed {
    neg: bool,
    mag: BigUint,
}

impl Signed {
    fn from(mag: BigUint) -> Self {
        Signed { neg: false, mag }
    }

    fn is_even(&self) -> bool {
        self.mag.is_even()
    }

    fn shr1(&self) -> Signed {
        Signed { neg: self.neg && !self.mag.is_zero(), mag: self.mag.shr(1) }
    }

    fn add(&self, other: &Signed) -> Signed {
        if self.neg == other.neg {
            Signed { neg: self.neg, mag: self.mag.add(&other.mag) }
        } else if self.mag >= other.mag {
            Signed { neg: self.neg && self.mag != other.mag, mag: self.mag.sub(&other.mag) }
        } else {
            Signed { neg: other.neg, mag: other.mag.sub(&self.mag) }
        }
    }

    fn sub(&self, other: &Signed) -> Signed {
        self.add(&Signed { neg: !other.neg && !other.mag.is_zero(), mag: other.mag.clone() })
    }

    fn rem_floor(&self, m: &BigUint) -> BigUint {
        let r = self.mag.rem(m);
        if self.neg && !r.is_zero() {
            m.sub(&r)
        } else {
            r
        }
    }
}

/// Computes `a^{-1} mod m` with the binary extended Euclidean
/// algorithm (HAC 14.61, the structure of `mbedtls_mpi_inv_mod`),
/// reporting every halving and subtraction to `observer`. Returns
/// `None` when `gcd(a, m) != 1`.
///
/// # Panics
/// Panics if `m` is zero or one.
pub fn mod_inverse_observed(
    a: &BigUint,
    m: &BigUint,
    mut observer: impl FnMut(InvOp),
) -> Option<BigUint> {
    assert!(*m > BigUint::one(), "modulus must exceed 1");
    let a = a.rem(m);
    if a.is_zero() {
        return None;
    }
    // Both even => gcd >= 2 (and the halving bookkeeping below assumes
    // at least one operand is odd, as in HAC 14.61).
    if a.is_even() && m.is_even() {
        return None;
    }
    let mut u = a.clone();
    let mut v = m.clone();
    let m_signed = Signed::from(m.clone());
    let a_signed = Signed::from(a.clone());
    // u = A*a + B*m ; v = C*a + D*m
    let mut big_a = Signed::from(BigUint::one());
    let mut big_b = Signed::from(BigUint::zero());
    let mut big_c = Signed::from(BigUint::zero());
    let mut big_d = Signed::from(BigUint::one());
    while !u.is_zero() {
        while u.is_even() {
            observer(InvOp::ShiftR);
            u = u.shr(1);
            if big_a.is_even() && big_b.is_even() {
                big_a = big_a.shr1();
                big_b = big_b.shr1();
            } else {
                big_a = big_a.add(&m_signed).shr1();
                big_b = big_b.sub(&a_signed).shr1();
            }
        }
        while v.is_even() {
            observer(InvOp::ShiftR);
            v = v.shr(1);
            if big_c.is_even() && big_d.is_even() {
                big_c = big_c.shr1();
                big_d = big_d.shr1();
            } else {
                big_c = big_c.add(&m_signed).shr1();
                big_d = big_d.sub(&a_signed).shr1();
            }
        }
        observer(InvOp::Sub);
        if u >= v {
            u = u.sub(&v);
            big_a = big_a.sub(&big_c);
            big_b = big_b.sub(&big_d);
        } else {
            v = v.sub(&u);
            big_c = big_c.sub(&big_a);
            big_d = big_d.sub(&big_b);
        }
    }
    if v != BigUint::one() {
        return None; // not coprime
    }
    Some(big_c.rem_floor(m))
}

/// Unobserved modular inverse.
pub fn mod_inverse(a: &BigUint, m: &BigUint) -> Option<BigUint> {
    mod_inverse_observed(a, m, |_| {})
}

/// The ground-truth operation trace of one inversion.
pub fn inversion_trace(a: &BigUint, m: &BigUint) -> Vec<InvOp> {
    let mut trace = Vec::new();
    let _ = mod_inverse_observed(a, m, |op| trace.push(op));
    trace
}

/// Fraction of operations classified correctly by a detector, given
/// per-operation observations `(shift_seen, sub_seen)` against the
/// ground-truth trace (the §VIII-B2 accuracy metric: 90.7% in SGX).
pub fn op_detection_accuracy(observed: &[InvOp], truth: &[InvOp]) -> f64 {
    crate::accuracy_of(observed, truth)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_inverses() {
        assert_eq!(mod_inverse(&big(3), &big(11)), Some(big(4)));
        assert_eq!(mod_inverse(&big(7), &big(40)), Some(big(23)));
        // 65537^{-1} mod an even phi (the RSA case).
        let phi = big(1048560); // e.g. (p-1)(q-1) style even modulus
        let e = big(65537);
        let d = mod_inverse(&e, &phi).unwrap();
        assert_eq!(e.mul(&d).rem(&phi), BigUint::one());
    }

    #[test]
    fn non_coprime_returns_none() {
        assert_eq!(mod_inverse(&big(6), &big(9)), None);
        assert_eq!(mod_inverse(&big(0), &big(9)), None);
    }

    #[test]
    fn inverse_verifies_for_many_pairs() {
        for a in 2u64..60 {
            for m in [61u64, 64, 97, 100] {
                let (ba, bm) = (big(a), big(m));
                match mod_inverse(&ba, &bm) {
                    Some(inv) => {
                        assert_eq!(ba.mul(&inv).rem(&bm), BigUint::one(), "a={a} m={m}");
                        assert!(inv < bm);
                    }
                    None => assert_ne!(ba.gcd(&bm), BigUint::one(), "a={a} m={m}"),
                }
            }
        }
    }

    #[test]
    fn trace_contains_both_op_kinds_and_is_secret_dependent() {
        let t1 = inversion_trace(&big(65537), &big(1048560));
        let t2 = inversion_trace(&big(65537), &big(1048572));
        assert!(t1.contains(&InvOp::ShiftR) && t1.contains(&InvOp::Sub));
        assert_ne!(t1, t2, "different secrets must yield different traces");
    }

    #[test]
    fn detection_accuracy_metric() {
        let truth = vec![InvOp::ShiftR, InvOp::Sub, InvOp::ShiftR];
        let observed = vec![InvOp::ShiftR, InvOp::ShiftR, InvOp::ShiftR];
        assert!((op_detection_accuracy(&observed, &truth) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "modulus must exceed 1")]
    fn tiny_modulus_panics() {
        mod_inverse(&big(3), &big(1));
    }
}
