//! Victim access traces: a serializable record of the secret-dependent
//! memory events a victim emits, with mapping onto simulated pages.
//!
//! This is the gem5-full-system substitute's glue layer: victims are
//! pure algorithms that emit [`TraceEvent`]s through observers; a
//! [`PageMap`] pins each event kind to a (simulated) page, and the
//! case studies replay the mapped trace against the secure memory
//! while an attack monitors it.

use std::collections::BTreeMap;

/// One victim memory event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Which logical location was touched (e.g. "square", "r",
    /// "shift_r"). Tags map to pages through a [`PageMap`].
    pub tag: String,
    /// Whether the event is a store (MetaLeak-C-visible) or a load /
    /// instruction fetch (MetaLeak-T-visible).
    pub is_write: bool,
}

impl TraceEvent {
    /// A load / ifetch event.
    pub fn load(tag: &str) -> Self {
        TraceEvent { tag: tag.to_owned(), is_write: false }
    }

    /// A store event.
    pub fn store(tag: &str) -> Self {
        TraceEvent { tag: tag.to_owned(), is_write: true }
    }
}

/// An ordered victim trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AccessTrace {
    /// The events, in program order.
    pub events: Vec<TraceEvent>,
}

impl AccessTrace {
    /// An empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a load.
    pub fn load(&mut self, tag: &str) {
        self.events.push(TraceEvent::load(tag));
    }

    /// Records a store.
    pub fn store(&mut self, tag: &str) {
        self.events.push(TraceEvent::store(tag));
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Event counts per tag (workload characterization).
    pub fn histogram(&self) -> BTreeMap<String, usize> {
        let mut out = BTreeMap::new();
        for e in &self.events {
            *out.entry(e.tag.clone()).or_insert(0) += 1;
        }
        out
    }

    /// Serializes to a line-oriented text format (`L tag` / `S tag`).
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 8);
        for e in &self.events {
            out.push(if e.is_write { 'S' } else { 'L' });
            out.push(' ');
            out.push_str(&e.tag);
            out.push('\n');
        }
        out
    }

    /// Parses the [`AccessTrace::to_text`] format; unknown lines are
    /// rejected.
    ///
    /// # Errors
    /// Returns the offending line on malformed input.
    pub fn from_text(text: &str) -> Result<Self, String> {
        let mut trace = AccessTrace::new();
        for line in text.lines() {
            if line.is_empty() {
                continue;
            }
            match line.split_once(' ') {
                Some(("L", tag)) => trace.load(tag),
                Some(("S", tag)) => trace.store(tag),
                _ => return Err(format!("malformed trace line: {line:?}")),
            }
        }
        Ok(trace)
    }
}

/// Maps event tags onto simulated data-block indices (one block per
/// tag, standing for the page holding that variable / routine).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PageMap {
    map: BTreeMap<String, u64>,
}

impl PageMap {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins `tag` to data block `block`.
    pub fn pin(&mut self, tag: &str, block: u64) -> &mut Self {
        self.map.insert(tag.to_owned(), block);
        self
    }

    /// The block for `tag`, if pinned.
    pub fn block_of(&self, tag: &str) -> Option<u64> {
        self.map.get(tag).copied()
    }

    /// Resolves a trace into block-level events, dropping events whose
    /// tag is unpinned (they are invisible to the attack).
    pub fn resolve(&self, trace: &AccessTrace) -> Vec<(u64, bool)> {
        trace.events.iter().filter_map(|e| self.block_of(&e.tag).map(|b| (b, e.is_write))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> AccessTrace {
        let mut t = AccessTrace::new();
        t.load("square");
        t.load("multiply");
        t.store("r");
        t.load("square");
        t
    }

    #[test]
    fn histogram_counts_tags() {
        let h = sample().histogram();
        assert_eq!(h["square"], 2);
        assert_eq!(h["multiply"], 1);
        assert_eq!(h["r"], 1);
    }

    #[test]
    fn text_round_trip() {
        let t = sample();
        let text = t.to_text();
        assert_eq!(AccessTrace::from_text(&text).unwrap(), t);
        assert!(text.starts_with("L square\n"));
        assert!(text.contains("S r\n"));
    }

    #[test]
    fn malformed_text_is_rejected() {
        assert!(AccessTrace::from_text("X nope").is_err());
        assert!(AccessTrace::from_text("L ok\ngarbage").is_err());
        assert_eq!(AccessTrace::from_text("").unwrap(), AccessTrace::new());
    }

    #[test]
    fn page_map_resolves_and_filters() {
        let mut map = PageMap::new();
        map.pin("square", 100 * 64).pin("r", 200 * 64);
        let resolved = map.resolve(&sample());
        // "multiply" is unpinned -> dropped.
        assert_eq!(resolved, vec![(6400, false), (12800, true), (6400, false)]);
        assert_eq!(map.block_of("multiply"), None);
    }

    #[test]
    fn victims_emit_into_traces() {
        use crate::bignum::BigUint;
        let mut trace = AccessTrace::new();
        BigUint::from_u64(3).modpow_observed(
            &BigUint::from_u64(0b101),
            &BigUint::from_u64(97),
            |op| trace.load(op),
        );
        // bits 1,0,1 -> S M | S | S M
        assert_eq!(trace.to_text(), "L square\nL multiply\nL square\nL square\nL multiply\n");
    }
}
