//! The libgcrypt-style RSA victim (§VIII-B1): key generation with
//! Miller–Rabin primes, and left-to-right square-and-multiply modular
//! exponentiation whose square/multiply instruction-fetch sequence
//! leaks the private exponent (Listing 2 of the paper).

use crate::bignum::BigUint;
use crate::modinv::mod_inverse;
use metaleak_sim::rng::SimRng;

/// One modular-exponentiation operation, as fetched from its own code
/// page in libgcrypt 1.5.2 (`_gcry_mpih_sqr_n_basecase` vs
/// `_gcry_mpih_mul_karatsuba_case`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModExpOp {
    /// Squaring (every exponent bit).
    Square,
    /// Multiplication (only for '1' bits).
    Multiply,
}

/// Miller–Rabin primality test with deterministic pseudo-random bases.
pub fn is_probable_prime(n: &BigUint, rounds: usize, rng: &mut SimRng) -> bool {
    if n < &BigUint::from_u64(2) {
        return false;
    }
    for &p in &[2u64, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31] {
        let p = BigUint::from_u64(p);
        if *n == p {
            return true;
        }
        if n.rem(&p).is_zero() {
            return false;
        }
    }
    // n - 1 = d * 2^r
    let n_minus_1 = n.sub(&BigUint::one());
    let mut d = n_minus_1.clone();
    let mut r = 0usize;
    while d.is_even() {
        d = d.shr(1);
        r += 1;
    }
    'witness: for _ in 0..rounds {
        let a = BigUint::from_u64(2 + rng.below(1 << 30));
        let mut x = a.modpow(&d, n);
        if x == BigUint::one() || x == n_minus_1 {
            continue;
        }
        for _ in 0..r - 1 {
            x = x.sqr().rem(n);
            if x == n_minus_1 {
                continue 'witness;
            }
        }
        return false;
    }
    true
}

/// Generates a `bits`-bit probable prime.
pub fn gen_prime(bits: usize, rng: &mut SimRng) -> BigUint {
    assert!(bits >= 8, "prime too small");
    loop {
        let mut bytes = vec![0u8; bits.div_ceil(8)];
        rng.fill_bytes(&mut bytes);
        let mut candidate = BigUint::from_be_bytes(&bytes);
        // Force the top and bottom bits: value in [2^(bits-1), 2^bits).
        candidate = candidate.rem(&BigUint::one().shl(bits - 1)).add(&BigUint::one().shl(bits - 1));
        if candidate.is_even() {
            candidate = candidate.add(&BigUint::one());
        }
        if is_probable_prime(&candidate, 12, rng) {
            return candidate;
        }
    }
}

/// An RSA key pair (small moduli; simulation victim only).
#[derive(Debug, Clone)]
pub struct RsaKey {
    /// Modulus `n = p * q`.
    pub n: BigUint,
    /// Public exponent.
    pub e: BigUint,
    /// Private exponent `d = e^{-1} mod (p-1)(q-1)`.
    pub d: BigUint,
    /// First prime.
    pub p: BigUint,
    /// Second prime.
    pub q: BigUint,
}

impl RsaKey {
    /// Generates a key with `prime_bits`-bit primes, deterministically
    /// from `seed`.
    pub fn generate(prime_bits: usize, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let e = BigUint::from_u64(65537);
        loop {
            let p = gen_prime(prime_bits, &mut rng);
            let q = gen_prime(prime_bits, &mut rng);
            if p == q {
                continue;
            }
            let phi = p.sub(&BigUint::one()).mul(&q.sub(&BigUint::one()));
            if let Some(d) = mod_inverse(&e, &phi) {
                let n = p.mul(&q);
                return RsaKey { n, e, d, p, q };
            }
        }
    }

    /// Encrypts (public operation).
    pub fn encrypt(&self, m: &BigUint) -> BigUint {
        m.modpow(&self.e, &self.n)
    }

    /// Decrypts with the observable square-and-multiply victim routine.
    /// `observer` sees each [`ModExpOp`] — exactly the page-fetch
    /// sequence MetaLeak-T monitors.
    pub fn decrypt_observed(&self, c: &BigUint, mut observer: impl FnMut(ModExpOp)) -> BigUint {
        c.modpow_observed(&self.d, &self.n, |op| {
            observer(match op {
                "square" => ModExpOp::Square,
                _ => ModExpOp::Multiply,
            })
        })
    }

    /// The ground-truth operation trace of one decryption.
    pub fn decrypt_trace(&self, c: &BigUint) -> Vec<ModExpOp> {
        let mut trace = Vec::new();
        self.decrypt_observed(c, |op| trace.push(op));
        trace
    }
}

/// Recovers exponent bits from an operation trace: every `Square`
/// starts a bit; a following `Multiply` makes it '1' (msb first).
pub fn recover_exponent_from_trace(ops: &[ModExpOp]) -> BigUint {
    let mut bits = Vec::new();
    let mut i = 0;
    while i < ops.len() {
        match ops[i] {
            ModExpOp::Square => {
                let one = matches!(ops.get(i + 1), Some(ModExpOp::Multiply));
                bits.push(one);
                i += if one { 2 } else { 1 };
            }
            ModExpOp::Multiply => {
                // Desynchronized trace: treat as a '1' continuation.
                i += 1;
            }
        }
    }
    bits_to_uint(&bits)
}

/// Recovers exponent bits from per-iteration observations
/// `(square_seen, multiply_seen)` — the side-channel decoder used when
/// each iteration is monitored with mEvict+mReload (one window per
/// victim step, §VIII-B1).
pub fn recover_exponent_from_windows(windows: &[(bool, bool)]) -> BigUint {
    let bits: Vec<bool> = windows.iter().map(|&(_, m)| m).collect();
    bits_to_uint(&bits)
}

fn bits_to_uint(bits: &[bool]) -> BigUint {
    let mut v = BigUint::zero();
    for &b in bits {
        v = v.shl(1);
        if b {
            v = v.add(&BigUint::one());
        }
    }
    v
}

/// Fraction of exponent bits recovered correctly (msb-aligned).
pub fn exponent_bit_accuracy(recovered: &BigUint, truth: &BigUint) -> f64 {
    let n = truth.bits().max(1);
    let mut hits = 0;
    for i in 0..n {
        if recovered.bit(i) == truth.bit(i) {
            hits += 1;
        }
    }
    hits as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primality_basics() {
        let mut rng = SimRng::seed_from(1);
        for p in [2u64, 3, 5, 17, 101, 65537, 1_000_003] {
            assert!(is_probable_prime(&BigUint::from_u64(p), 10, &mut rng), "{p}");
        }
        for c in [1u64, 4, 100, 65535, 1_000_001] {
            assert!(!is_probable_prime(&BigUint::from_u64(c), 10, &mut rng), "{c}");
        }
    }

    #[test]
    fn generated_primes_have_requested_size() {
        let mut rng = SimRng::seed_from(7);
        let p = gen_prime(48, &mut rng);
        assert_eq!(p.bits(), 48);
        assert!(!p.is_even());
    }

    #[test]
    fn rsa_round_trip() {
        let key = RsaKey::generate(48, 99);
        let m = BigUint::from_u64(0xC0FFEE);
        let c = key.encrypt(&m);
        assert_ne!(c, m);
        assert_eq!(key.decrypt_observed(&c, |_| {}), m);
    }

    #[test]
    fn d_is_inverse_of_e() {
        let key = RsaKey::generate(40, 3);
        let phi = key.p.sub(&BigUint::one()).mul(&key.q.sub(&BigUint::one()));
        assert_eq!(key.e.mul(&key.d).rem(&phi), BigUint::one());
    }

    #[test]
    fn trace_recovers_exponent_exactly() {
        let key = RsaKey::generate(40, 5);
        let c = key.encrypt(&BigUint::from_u64(42));
        let trace = key.decrypt_trace(&c);
        let recovered = recover_exponent_from_trace(&trace);
        assert_eq!(recovered, key.d, "perfect trace must recover d exactly");
        assert_eq!(exponent_bit_accuracy(&recovered, &key.d), 1.0);
    }

    #[test]
    fn window_decoder_matches_bit_pattern() {
        let d = BigUint::from_u64(0b101101);
        let windows: Vec<(bool, bool)> = d.bits_msb_first().iter().map(|&b| (true, b)).collect();
        assert_eq!(recover_exponent_from_windows(&windows), d);
    }

    #[test]
    fn accuracy_metric_counts_flipped_bits() {
        let truth = BigUint::from_u64(0b1111);
        let off_by_one = BigUint::from_u64(0b1110);
        assert_eq!(exponent_bit_accuracy(&off_by_one, &truth), 0.75);
    }

    #[test]
    fn trace_shape_matches_hamming_weight() {
        let key = RsaKey::generate(40, 11);
        let trace = key.decrypt_trace(&key.encrypt(&BigUint::from_u64(7)));
        let squares = trace.iter().filter(|o| **o == ModExpOp::Square).count();
        let mults = trace.iter().filter(|o| **o == ModExpOp::Multiply).count();
        assert_eq!(squares, key.d.bits());
        assert_eq!(mults, key.d.bits_msb_first().iter().filter(|&&b| b).count());
    }
}
