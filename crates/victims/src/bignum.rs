//! Arbitrary-precision unsigned integers, from scratch.
//!
//! This is the substrate for the two cryptographic victims: the
//! libgcrypt-style square-and-multiply modular exponentiation (§VIII-B1)
//! and the mbedTLS-style modular inversion (§VIII-B2). Only the
//! operations those algorithms need are implemented: comparison,
//! add/sub, shifts, schoolbook and Karatsuba multiplication, division
//! with remainder, modular exponentiation and modular inverse.

use std::cmp::Ordering;
use std::fmt;

/// An arbitrary-precision unsigned integer (little-endian u64 limbs,
/// normalized: no trailing zero limbs).
///
/// ```
/// use metaleak_victims::bignum::BigUint;
/// let a = BigUint::from_u64(12) * BigUint::from_u64(10);
/// assert_eq!(a, BigUint::from_u64(120));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct BigUint {
    limbs: Vec<u64>,
}

impl BigUint {
    /// Zero.
    pub fn zero() -> Self {
        BigUint { limbs: Vec::new() }
    }

    /// One.
    pub fn one() -> Self {
        BigUint::from_u64(1)
    }

    /// From a machine word.
    pub fn from_u64(v: u64) -> Self {
        if v == 0 {
            Self::zero()
        } else {
            BigUint { limbs: vec![v] }
        }
    }

    /// From little-endian limbs (normalizing).
    pub fn from_limbs(mut limbs: Vec<u64>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        BigUint { limbs }
    }

    /// From big-endian bytes.
    pub fn from_be_bytes(bytes: &[u8]) -> Self {
        let mut limbs = Vec::with_capacity(bytes.len() / 8 + 1);
        for chunk in bytes.rchunks(8) {
            let mut limb = 0u64;
            for &b in chunk {
                limb = (limb << 8) | b as u64;
            }
            limbs.push(limb);
        }
        Self::from_limbs(limbs)
    }

    /// The little-endian limbs.
    pub fn limbs(&self) -> &[u64] {
        &self.limbs
    }

    /// True iff zero.
    pub fn is_zero(&self) -> bool {
        self.limbs.is_empty()
    }

    /// True iff the lowest bit is clear (zero counts as even).
    pub fn is_even(&self) -> bool {
        self.limbs.first().is_none_or(|l| l & 1 == 0)
    }

    /// Number of significant bits.
    pub fn bits(&self) -> usize {
        match self.limbs.last() {
            None => 0,
            Some(top) => self.limbs.len() * 64 - top.leading_zeros() as usize,
        }
    }

    /// Value of bit `i` (false beyond the top).
    pub fn bit(&self, i: usize) -> bool {
        self.limbs.get(i / 64).is_some_and(|l| (l >> (i % 64)) & 1 == 1)
    }

    /// The bits from most-significant downwards (square-and-multiply
    /// iteration order).
    pub fn bits_msb_first(&self) -> Vec<bool> {
        (0..self.bits()).rev().map(|i| self.bit(i)).collect()
    }

    /// `self + other`.
    pub fn add(&self, other: &BigUint) -> BigUint {
        let n = self.limbs.len().max(other.limbs.len());
        let mut out = Vec::with_capacity(n + 1);
        let mut carry = 0u64;
        for i in 0..n {
            let a = self.limbs.get(i).copied().unwrap_or(0);
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (s1, c1) = a.overflowing_add(b);
            let (s2, c2) = s1.overflowing_add(carry);
            out.push(s2);
            carry = (c1 as u64) + (c2 as u64);
        }
        if carry > 0 {
            out.push(carry);
        }
        Self::from_limbs(out)
    }

    /// `self - other`.
    ///
    /// # Panics
    /// Panics if `other > self` (unsigned underflow).
    pub fn sub(&self, other: &BigUint) -> BigUint {
        assert!(*self >= *other, "BigUint subtraction underflow");
        let mut out = Vec::with_capacity(self.limbs.len());
        let mut borrow = 0u64;
        for i in 0..self.limbs.len() {
            let a = self.limbs[i];
            let b = other.limbs.get(i).copied().unwrap_or(0);
            let (d1, b1) = a.overflowing_sub(b);
            let (d2, b2) = d1.overflowing_sub(borrow);
            out.push(d2);
            borrow = (b1 as u64) + (b2 as u64);
        }
        debug_assert_eq!(borrow, 0);
        Self::from_limbs(out)
    }

    /// `self << k`.
    pub fn shl(&self, k: usize) -> BigUint {
        if self.is_zero() {
            return Self::zero();
        }
        let limb_shift = k / 64;
        let bit_shift = k % 64;
        let mut out = vec![0u64; limb_shift];
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs);
        } else {
            let mut carry = 0u64;
            for &l in &self.limbs {
                out.push((l << bit_shift) | carry);
                carry = l >> (64 - bit_shift);
            }
            if carry > 0 {
                out.push(carry);
            }
        }
        Self::from_limbs(out)
    }

    /// `self >> k` (the `mbedtls_mpi_shift_r` victim operation).
    pub fn shr(&self, k: usize) -> BigUint {
        let limb_shift = k / 64;
        if limb_shift >= self.limbs.len() {
            return Self::zero();
        }
        let bit_shift = k % 64;
        let mut out = Vec::with_capacity(self.limbs.len() - limb_shift);
        if bit_shift == 0 {
            out.extend_from_slice(&self.limbs[limb_shift..]);
        } else {
            for i in limb_shift..self.limbs.len() {
                let lo = self.limbs[i] >> bit_shift;
                let hi = self.limbs.get(i + 1).map_or(0, |l| l << (64 - bit_shift));
                out.push(lo | hi);
            }
        }
        Self::from_limbs(out)
    }

    /// Schoolbook multiplication (the `mul_basecase` of libgcrypt).
    pub fn mul_basecase(&self, other: &BigUint) -> BigUint {
        if self.is_zero() || other.is_zero() {
            return Self::zero();
        }
        let mut out = vec![0u64; self.limbs.len() + other.limbs.len()];
        for (i, &a) in self.limbs.iter().enumerate() {
            let mut carry = 0u128;
            for (j, &b) in other.limbs.iter().enumerate() {
                let cur = out[i + j] as u128 + (a as u128) * (b as u128) + carry;
                out[i + j] = cur as u64;
                carry = cur >> 64;
            }
            let mut k = i + other.limbs.len();
            while carry > 0 {
                let cur = out[k] as u128 + carry;
                out[k] = cur as u64;
                carry = cur >> 64;
                k += 1;
            }
        }
        Self::from_limbs(out)
    }

    /// Karatsuba multiplication above a limb threshold (mirrors
    /// `_gcry_mpih_mul_karatsuba_case`).
    pub fn mul(&self, other: &BigUint) -> BigUint {
        const KARATSUBA_THRESHOLD: usize = 16;
        if self.limbs.len() < KARATSUBA_THRESHOLD || other.limbs.len() < KARATSUBA_THRESHOLD {
            return self.mul_basecase(other);
        }
        let split = self.limbs.len().max(other.limbs.len()) / 2;
        let (a0, a1) = self.split_at(split);
        let (b0, b1) = other.split_at(split);
        let z0 = a0.mul(&b0);
        let z2 = a1.mul(&b1);
        let z1 = a0.add(&a1).mul(&b0.add(&b1)).sub(&z0).sub(&z2);
        z2.shl(split * 128).add(&z1.shl(split * 64)).add(&z0)
    }

    fn split_at(&self, limb: usize) -> (BigUint, BigUint) {
        if limb >= self.limbs.len() {
            (self.clone(), Self::zero())
        } else {
            (
                Self::from_limbs(self.limbs[..limb].to_vec()),
                Self::from_limbs(self.limbs[limb..].to_vec()),
            )
        }
    }

    /// Squaring (the `sqr_basecase` of libgcrypt; dispatches to `mul`).
    pub fn sqr(&self) -> BigUint {
        self.mul(self)
    }

    /// Division with remainder: `(self / d, self % d)` by binary long
    /// division.
    ///
    /// # Panics
    /// Panics on division by zero.
    pub fn div_rem(&self, d: &BigUint) -> (BigUint, BigUint) {
        assert!(!d.is_zero(), "division by zero");
        if self < d {
            return (Self::zero(), self.clone());
        }
        let mut q = Self::zero();
        let mut r = Self::zero();
        for i in (0..self.bits()).rev() {
            r = r.shl(1);
            if self.bit(i) {
                r = r.add(&Self::one());
            }
            if r >= *d {
                r = r.sub(d);
                q = q.add(&Self::one().shl(i));
            }
        }
        (q, r)
    }

    /// `self mod m`.
    pub fn rem(&self, m: &BigUint) -> BigUint {
        self.div_rem(m).1
    }

    /// Modular exponentiation by left-to-right square-and-multiply
    /// (the libgcrypt 1.5.2 victim algorithm, Listing 2). The optional
    /// `observer` is called with `"square"` / `"multiply"` before each
    /// operation, which is exactly the instruction-fetch trace MetaLeak
    /// observes.
    pub fn modpow_observed(
        &self,
        exp: &BigUint,
        modulus: &BigUint,
        mut observer: impl FnMut(&str),
    ) -> BigUint {
        assert!(!modulus.is_zero(), "zero modulus");
        let mut acc = Self::one().rem(modulus);
        for bit in exp.bits_msb_first() {
            observer("square");
            acc = acc.sqr().rem(modulus);
            if bit {
                observer("multiply");
                acc = acc.mul(self).rem(modulus);
            }
        }
        acc
    }

    /// Modular exponentiation without observation.
    pub fn modpow(&self, exp: &BigUint, modulus: &BigUint) -> BigUint {
        self.modpow_observed(exp, modulus, |_| {})
    }

    /// Greatest common divisor (binary GCD).
    pub fn gcd(&self, other: &BigUint) -> BigUint {
        let (mut a, mut b) = (self.clone(), other.clone());
        if a.is_zero() {
            return b;
        }
        if b.is_zero() {
            return a;
        }
        let mut shift = 0;
        while a.is_even() && b.is_even() {
            a = a.shr(1);
            b = b.shr(1);
            shift += 1;
        }
        while !a.is_zero() {
            while a.is_even() {
                a = a.shr(1);
            }
            while b.is_even() {
                b = b.shr(1);
            }
            if a >= b {
                a = a.sub(&b);
            } else {
                b = b.sub(&a);
            }
        }
        b.shl(shift)
    }
}

impl Ord for BigUint {
    fn cmp(&self, other: &Self) -> Ordering {
        match self.limbs.len().cmp(&other.limbs.len()) {
            Ordering::Equal => {
                for (a, b) in self.limbs.iter().rev().zip(other.limbs.iter().rev()) {
                    match a.cmp(b) {
                        Ordering::Equal => continue,
                        ord => return ord,
                    }
                }
                Ordering::Equal
            }
            ord => ord,
        }
    }
}

impl PartialOrd for BigUint {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for BigUint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0x0");
        }
        write!(f, "0x")?;
        for (i, l) in self.limbs.iter().rev().enumerate() {
            if i == 0 {
                write!(f, "{l:x}")?;
            } else {
                write!(f, "{l:016x}")?;
            }
        }
        Ok(())
    }
}

impl core::ops::Add for BigUint {
    type Output = BigUint;
    fn add(self, rhs: BigUint) -> BigUint {
        BigUint::add(&self, &rhs)
    }
}

impl core::ops::Sub for BigUint {
    type Output = BigUint;
    fn sub(self, rhs: BigUint) -> BigUint {
        BigUint::sub(&self, &rhs)
    }
}

impl core::ops::Mul for BigUint {
    type Output = BigUint;
    fn mul(self, rhs: BigUint) -> BigUint {
        BigUint::mul(&self, &rhs)
    }
}

impl From<u64> for BigUint {
    fn from(v: u64) -> Self {
        BigUint::from_u64(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big(v: u64) -> BigUint {
        BigUint::from_u64(v)
    }

    #[test]
    fn small_arithmetic() {
        assert_eq!(big(5).add(&big(7)), big(12));
        assert_eq!(big(12).sub(&big(7)), big(5));
        assert_eq!(big(6).mul(&big(7)), big(42));
        assert_eq!(big(100).div_rem(&big(7)), (big(14), big(2)));
    }

    #[test]
    fn carry_propagation() {
        let max = big(u64::MAX);
        let sum = max.add(&big(1));
        assert_eq!(sum.limbs(), &[0, 1]);
        assert_eq!(sum.sub(&big(1)), max);
        let sq = max.mul(&max);
        // (2^64-1)^2 = 2^128 - 2^65 + 1
        assert_eq!(sq.limbs(), &[1, u64::MAX - 1]);
    }

    #[test]
    fn shifts() {
        let v = big(0b1011);
        assert_eq!(v.shl(3), big(0b1011000));
        assert_eq!(v.shr(2), big(0b10));
        assert_eq!(v.shl(64).limbs(), &[0, 0b1011]);
        assert_eq!(v.shl(64).shr(64), v);
        assert_eq!(v.shr(100), BigUint::zero());
    }

    #[test]
    fn bits_and_bit_access() {
        let v = big(0b1010);
        assert_eq!(v.bits(), 4);
        assert!(!v.bit(0) && v.bit(1) && !v.bit(2) && v.bit(3));
        assert_eq!(v.bits_msb_first(), vec![true, false, true, false]);
        assert_eq!(BigUint::zero().bits(), 0);
    }

    #[test]
    fn karatsuba_matches_basecase() {
        // Build ~20-limb operands to cross the threshold.
        let a =
            BigUint::from_limbs((1..=20u64).map(|i| i.wrapping_mul(0x9E3779B97F4A7C15)).collect());
        let b =
            BigUint::from_limbs((1..=21u64).map(|i| i.wrapping_mul(0xD1B54A32D192ED03)).collect());
        assert_eq!(a.mul(&b), a.mul_basecase(&b));
        assert_eq!(a.sqr(), a.mul_basecase(&a));
    }

    #[test]
    fn div_rem_reconstructs() {
        let a = BigUint::from_limbs(vec![0xdeadbeef, 0x12345678, 0x42]);
        let d = BigUint::from_limbs(vec![0xffff1234, 0x9]);
        let (q, r) = a.div_rem(&d);
        assert!(r < d);
        assert_eq!(q.mul(&d).add(&r), a);
    }

    #[test]
    fn modpow_small_values() {
        // 4^13 mod 497 = 445 (classic test vector).
        assert_eq!(big(4).modpow(&big(13), &big(497)), big(445));
        // Fermat: a^(p-1) = 1 mod p for prime p.
        assert_eq!(big(7).modpow(&big(1008), &big(1009)), big(1));
    }

    #[test]
    fn modpow_observer_trace_matches_exponent() {
        let mut trace = Vec::new();
        big(3).modpow_observed(&big(0b10110), &big(1_000_003), |op| trace.push(op.to_owned()));
        // bits msb-first: 1 0 1 1 0 -> S M | S | S M | S M | S
        let expect =
            ["square", "multiply", "square", "square", "multiply", "square", "multiply", "square"];
        assert_eq!(trace, expect);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(big(48).gcd(&big(36)), big(12));
        assert_eq!(big(17).gcd(&big(13)), big(1));
        assert_eq!(big(0).gcd(&big(5)), big(5));
        assert_eq!(big(12).gcd(&big(0)), big(12));
    }

    #[test]
    fn byte_parsing_and_display() {
        let v = BigUint::from_be_bytes(&[0x01, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00]);
        assert_eq!(v.limbs(), &[0, 1]);
        assert_eq!(big(0xdead).to_string(), "0xdead");
        assert_eq!(BigUint::zero().to_string(), "0x0");
    }

    #[test]
    fn comparison_orders_by_magnitude() {
        assert!(big(5) < big(9));
        assert!(BigUint::from_limbs(vec![0, 1]) > big(u64::MAX));
        assert_eq!(big(7).cmp(&big(7)), Ordering::Equal);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn subtraction_underflow_panics() {
        big(3).sub(&big(5));
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        big(3).div_rem(&BigUint::zero());
    }
}
