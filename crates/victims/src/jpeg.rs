//! The libjpeg-style image-processing victim (§VIII-A): grayscale
//! images are transformed with an 8x8 DCT, quantized, and entropy-coded
//! by `encode_one_block`, whose per-coefficient zero/non-zero branch
//! (Listing 1: the `r++` vs `nbits` paths, on two different pages)
//! leaks the structure of the input image.

use metaleak_sim::rng::SimRng;

/// DCT block edge length.
pub const DCT_SIZE: usize = 8;
/// Coefficients per block (`DCTSIZE2` in libjpeg).
pub const DCT_SIZE2: usize = 64;
/// libjpeg's out-of-range guard (Listing 1 line 10).
pub const MAX_COEF_BITS: u32 = 10;

/// The zigzag scan order (`jpeg_natural_order`): zigzag index ->
/// row-major coefficient position.
pub const JPEG_NATURAL_ORDER: [usize; DCT_SIZE2] = [
    0, 1, 8, 16, 9, 2, 3, 10, 17, 24, 32, 25, 18, 11, 4, 5, 12, 19, 26, 33, 40, 48, 41, 34, 27, 20,
    13, 6, 7, 14, 21, 28, 35, 42, 49, 56, 57, 50, 43, 36, 29, 22, 15, 23, 30, 37, 44, 51, 58, 59,
    52, 45, 38, 31, 39, 46, 53, 60, 61, 54, 47, 55, 62, 63,
];

/// The standard JPEG luminance quantization table (Annex K).
pub const QUANT_TABLE: [u16; DCT_SIZE2] = [
    16, 11, 10, 16, 24, 40, 51, 61, 12, 12, 14, 19, 26, 58, 60, 55, 14, 13, 16, 24, 40, 57, 69, 56,
    14, 17, 22, 29, 51, 87, 80, 62, 18, 22, 37, 56, 68, 109, 103, 77, 24, 35, 55, 64, 81, 104, 113,
    92, 49, 64, 78, 87, 103, 121, 120, 101, 72, 92, 95, 98, 112, 100, 103, 99,
];

/// A grayscale image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GrayImage {
    /// Width in pixels (multiple of 8 for encoding).
    pub width: usize,
    /// Height in pixels (multiple of 8 for encoding).
    pub height: usize,
    /// Row-major pixels.
    pub pixels: Vec<u8>,
}

impl GrayImage {
    /// A black image.
    pub fn blank(width: usize, height: usize) -> Self {
        GrayImage { width, height, pixels: vec![0; width * height] }
    }

    /// Pixel accessor.
    pub fn get(&self, x: usize, y: usize) -> u8 {
        self.pixels[y * self.width + x]
    }

    /// Pixel mutator.
    pub fn set(&mut self, x: usize, y: usize, v: u8) {
        self.pixels[y * self.width + x] = v;
    }

    /// A horizontal gradient test image.
    pub fn gradient(width: usize, height: usize) -> Self {
        let mut img = Self::blank(width, height);
        for y in 0..height {
            for x in 0..width {
                img.set(x, y, ((x * 255) / width.max(1)) as u8);
            }
        }
        img
    }

    /// A filled-circle test image (sharp edges leak strongly).
    pub fn circle(width: usize, height: usize) -> Self {
        let mut img = Self::blank(width, height);
        let (cx, cy) = (width as f64 / 2.0, height as f64 / 2.0);
        let r = width.min(height) as f64 / 3.0;
        for y in 0..height {
            for x in 0..width {
                let d = ((x as f64 - cx).powi(2) + (y as f64 - cy).powi(2)).sqrt();
                img.set(x, y, if d < r { 220 } else { 30 });
            }
        }
        img
    }

    /// A checkerboard (high-frequency content in every block).
    pub fn checkerboard(width: usize, height: usize, cell: usize) -> Self {
        let mut img = Self::blank(width, height);
        for y in 0..height {
            for x in 0..width {
                let on = ((x / cell.max(1)) + (y / cell.max(1))).is_multiple_of(2);
                img.set(x, y, if on { 230 } else { 25 });
            }
        }
        img
    }

    /// Blocky pseudo-text glyphs (structured content like the paper's
    /// Figure 15 inputs).
    pub fn glyphs(width: usize, height: usize, seed: u64) -> Self {
        let mut img = Self::blank(width, height);
        let mut rng = SimRng::seed_from(seed);
        let mut y = 4;
        while y + 10 < height {
            let mut x = 4;
            while x + 8 < width {
                // Each "glyph" is a random arrangement of strokes.
                if rng.chance(0.8) {
                    let strokes = 2 + rng.index(3);
                    for _ in 0..strokes {
                        let horizontal = rng.chance(0.5);
                        let off = rng.index(6);
                        for t in 0..6 {
                            let (px, py) =
                                if horizontal { (x + t, y + off) } else { (x + off, y + t) };
                            img.set(px, py, 235);
                        }
                    }
                }
                x += 10;
            }
            y += 12;
        }
        img
    }

    /// Blocks across, blocks down.
    pub fn block_dims(&self) -> (usize, usize) {
        (self.width / DCT_SIZE, self.height / DCT_SIZE)
    }

    /// Extracts the 8x8 block at block coordinates `(bx, by)` as
    /// centered samples (-128..=127).
    pub fn block(&self, bx: usize, by: usize) -> [f64; DCT_SIZE2] {
        let mut out = [0.0; DCT_SIZE2];
        for y in 0..DCT_SIZE {
            for x in 0..DCT_SIZE {
                out[y * DCT_SIZE + x] =
                    self.get(bx * DCT_SIZE + x, by * DCT_SIZE + y) as f64 - 128.0;
            }
        }
        out
    }

    /// Writes the 8x8 block at `(bx, by)` from centered samples.
    pub fn set_block(&mut self, bx: usize, by: usize, samples: &[f64; DCT_SIZE2]) {
        for y in 0..DCT_SIZE {
            for x in 0..DCT_SIZE {
                let v = (samples[y * DCT_SIZE + x] + 128.0).round().clamp(0.0, 255.0);
                self.set(bx * DCT_SIZE + x, by * DCT_SIZE + y, v as u8);
            }
        }
    }

    /// Renders as a binary PGM (P5) byte stream.
    pub fn to_pgm(&self) -> Vec<u8> {
        let mut out = format!("P5\n{} {}\n255\n", self.width, self.height).into_bytes();
        out.extend_from_slice(&self.pixels);
        out
    }

    /// Coarse ASCII rendering (for terminal figures).
    pub fn to_ascii(&self, cols: usize) -> String {
        let ramp = b" .:-=+*#%@";
        let step_x = (self.width / cols.max(1)).max(1);
        let step_y = step_x * 2;
        let mut out = String::new();
        let mut y = 0;
        while y < self.height {
            let mut x = 0;
            while x < self.width {
                let v = self.get(x, y) as usize;
                out.push(ramp[v * (ramp.len() - 1) / 255] as char);
                x += step_x;
            }
            out.push('\n');
            y += step_y;
        }
        out
    }

    /// Mean squared error against another image of the same size.
    ///
    /// # Panics
    /// Panics on dimension mismatch.
    pub fn mse(&self, other: &GrayImage) -> f64 {
        assert_eq!((self.width, self.height), (other.width, other.height), "size mismatch");
        let sum: f64 = self
            .pixels
            .iter()
            .zip(&other.pixels)
            .map(|(&a, &b)| {
                let d = a as f64 - b as f64;
                d * d
            })
            .sum();
        sum / self.pixels.len() as f64
    }

    /// Peak signal-to-noise ratio in dB (infinite for identical images).
    pub fn psnr(&self, other: &GrayImage) -> f64 {
        let mse = self.mse(other);
        if mse == 0.0 {
            f64::INFINITY
        } else {
            10.0 * (255.0f64 * 255.0 / mse).log10()
        }
    }
}

/// Forward 8x8 DCT-II (separable, orthonormal scaling as in JPEG).
pub fn dct2d(samples: &[f64; DCT_SIZE2]) -> [f64; DCT_SIZE2] {
    let mut out = [0.0; DCT_SIZE2];
    for v in 0..DCT_SIZE {
        for u in 0..DCT_SIZE {
            let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
            let mut acc = 0.0;
            for y in 0..DCT_SIZE {
                for x in 0..DCT_SIZE {
                    acc += samples[y * DCT_SIZE + x]
                        * (((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI) / 16.0).cos()
                        * (((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI) / 16.0).cos();
                }
            }
            out[v * DCT_SIZE + u] = 0.25 * cu * cv * acc;
        }
    }
    out
}

/// Inverse 8x8 DCT.
pub fn idct2d(coefs: &[f64; DCT_SIZE2]) -> [f64; DCT_SIZE2] {
    let mut out = [0.0; DCT_SIZE2];
    for y in 0..DCT_SIZE {
        for x in 0..DCT_SIZE {
            let mut acc = 0.0;
            for v in 0..DCT_SIZE {
                for u in 0..DCT_SIZE {
                    let cu = if u == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    let cv = if v == 0 { 1.0 / 2f64.sqrt() } else { 1.0 };
                    acc += cu
                        * cv
                        * coefs[v * DCT_SIZE + u]
                        * (((2 * x + 1) as f64 * u as f64 * std::f64::consts::PI) / 16.0).cos()
                        * (((2 * y + 1) as f64 * v as f64 * std::f64::consts::PI) / 16.0).cos();
                }
            }
            out[y * DCT_SIZE + x] = 0.25 * acc;
        }
    }
    out
}

/// Quantizes a DCT block with [`QUANT_TABLE`].
pub fn quantize(coefs: &[f64; DCT_SIZE2]) -> [i32; DCT_SIZE2] {
    let mut out = [0i32; DCT_SIZE2];
    for i in 0..DCT_SIZE2 {
        out[i] = (coefs[i] / QUANT_TABLE[i] as f64).round() as i32;
    }
    out
}

/// Dequantizes back to DCT-coefficient scale.
pub fn dequantize(q: &[i32; DCT_SIZE2]) -> [f64; DCT_SIZE2] {
    let mut out = [0.0; DCT_SIZE2];
    for i in 0..DCT_SIZE2 {
        out[i] = q[i] as f64 * QUANT_TABLE[i] as f64;
    }
    out
}

/// One access event inside `encode_one_block` (Listing 1):
/// per zigzag index `k`, either the `r++` path (zero coefficient,
/// line 6, touching variable `r`'s page) or the `nbits` path (non-zero,
/// line 10, touching `nbits`'s page).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoefEvent {
    /// Zigzag index (1..64, AC coefficients only).
    pub k: usize,
    /// True when the coefficient was non-zero (the `nbits` path).
    pub nonzero: bool,
}

/// The per-block entropy-coding artifacts: the run-length pairs the
/// real encoder would emit, plus the access trace the attacker sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlockEncoding {
    /// `(run_of_zeros, coefficient)` pairs (simplified Huffman input).
    pub runs: Vec<(u32, i32)>,
    /// The access-event trace of Listing 1.
    pub events: Vec<CoefEvent>,
    /// Coefficients flagged out-of-range (nbits > MAX_COEF_BITS).
    pub out_of_range: u32,
}

/// `encode_one_block` (Listing 1): scans the quantized AC coefficients
/// in zigzag order; zero coefficients increment `r`, non-zero ones
/// compute `nbits` and emit a run-length pair.
pub fn encode_one_block(block: &[i32; DCT_SIZE2]) -> BlockEncoding {
    let mut runs = Vec::new();
    let mut events = Vec::with_capacity(DCT_SIZE2 - 1);
    let mut out_of_range = 0;
    let mut r = 0u32;
    for k in 1..DCT_SIZE2 {
        let coef = block[JPEG_NATURAL_ORDER[k]];
        if coef == 0 {
            // Listing 1 line 6: the `r++` path (write to r's page).
            events.push(CoefEvent { k, nonzero: false });
            r += 1;
        } else {
            // Listing 1 lines 8-10: the `nbits` path.
            events.push(CoefEvent { k, nonzero: true });
            let nbits = 32 - coef.unsigned_abs().leading_zeros();
            if nbits > MAX_COEF_BITS {
                out_of_range += 1;
            }
            runs.push((r, coef));
            r = 0;
        }
    }
    BlockEncoding { runs, events, out_of_range }
}

/// Full-image encoding: DCT + quantization + `encode_one_block` per
/// 8x8 block. Returns per-block encodings (ground truth for the
/// attack).
pub fn encode_image(img: &GrayImage) -> Vec<BlockEncoding> {
    let (bw, bh) = img.block_dims();
    let mut out = Vec::with_capacity(bw * bh);
    for by in 0..bh {
        for bx in 0..bw {
            let q = quantize(&dct2d(&img.block(bx, by)));
            out.push(encode_one_block(&q));
        }
    }
    out
}

/// The per-block non-zero masks (what MetaLeak infers: which zigzag
/// positions took the `nbits` path).
pub fn nonzero_masks(encodings: &[BlockEncoding]) -> Vec<[bool; DCT_SIZE2]> {
    encodings
        .iter()
        .map(|e| {
            let mut mask = [false; DCT_SIZE2];
            for ev in &e.events {
                mask[ev.k] = ev.nonzero;
            }
            mask
        })
        .collect()
}

/// Reconstructs an image from inferred non-zero masks: the attacker
/// starts from a blank image and synthesizes coefficients at the
/// positions it observed as non-zero (§VIII-A: the "local image
/// conversion pipeline"). Magnitudes are unknown, so a nominal
/// magnitude with alternating sign is used; the DC term is set to a
/// mid gray.
pub fn reconstruct_from_masks(
    masks: &[[bool; DCT_SIZE2]],
    width: usize,
    height: usize,
) -> GrayImage {
    let bw = width / DCT_SIZE;
    let mut img = GrayImage::blank(width, height);
    for (bi, mask) in masks.iter().enumerate() {
        let (bx, by) = (bi % bw, bi / bw);
        let mut q = [0i32; DCT_SIZE2];
        for k in 1..DCT_SIZE2 {
            if mask[k] {
                // Nominal magnitude: one quantization step, sign
                // alternating with k to avoid constructive bias.
                q[JPEG_NATURAL_ORDER[k]] = if k % 2 == 0 { -2 } else { 2 };
            }
        }
        let samples = idct2d(&dequantize(&q));
        img.set_block(bx, by, &samples);
    }
    img
}

/// Fraction of zero/non-zero flags inferred correctly (the paper's
/// "stealing accuracy": 94.3% with MetaLeak-T, 97.2% zero-element
/// recovery with MetaLeak-C).
pub fn mask_accuracy(inferred: &[[bool; DCT_SIZE2]], truth: &[[bool; DCT_SIZE2]]) -> f64 {
    assert_eq!(inferred.len(), truth.len(), "block count mismatch");
    let mut hits = 0usize;
    let mut total = 0usize;
    for (a, b) in inferred.iter().zip(truth) {
        for k in 1..DCT_SIZE2 {
            hits += (a[k] == b[k]) as usize;
            total += 1;
        }
    }
    hits as f64 / total.max(1) as f64
}

/// Per-block "detail energy" (count of non-zero AC flags) — the
/// feature the reconstruction preserves; used as a structural
/// similarity measure between original and stolen images.
pub fn energy_map(masks: &[[bool; DCT_SIZE2]]) -> Vec<u32> {
    masks.iter().map(|m| m[1..].iter().map(|&b| b as u32).sum()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zigzag_is_a_permutation() {
        let mut seen = [false; DCT_SIZE2];
        for &i in &JPEG_NATURAL_ORDER {
            assert!(!seen[i]);
            seen[i] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert_eq!(JPEG_NATURAL_ORDER[0], 0, "DC first");
        assert_eq!(JPEG_NATURAL_ORDER[1], 1);
        assert_eq!(JPEG_NATURAL_ORDER[2], 8);
    }

    #[test]
    fn dct_round_trips() {
        let img = GrayImage::circle(16, 16);
        let block = img.block(0, 0);
        let back = idct2d(&dct2d(&block));
        for (a, b) in block.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn flat_block_has_only_dc() {
        let img = GrayImage::blank(8, 8);
        let q = quantize(&dct2d(&img.block(0, 0)));
        assert!(q[1..].iter().all(|&c| c == 0));
        let enc = encode_one_block(&q);
        assert!(enc.runs.is_empty());
        assert!(enc.events.iter().all(|e| !e.nonzero));
        assert_eq!(enc.events.len(), 63);
    }

    #[test]
    fn checkerboard_block_has_ac_energy() {
        let img = GrayImage::checkerboard(8, 8, 1);
        let q = quantize(&dct2d(&img.block(0, 0)));
        let enc = encode_one_block(&q);
        assert!(!enc.runs.is_empty(), "high-frequency block must have AC coefficients");
        assert!(enc.events.iter().any(|e| e.nonzero));
    }

    #[test]
    fn runs_reconstruct_the_coefficients() {
        let mut q = [0i32; DCT_SIZE2];
        q[JPEG_NATURAL_ORDER[3]] = 5;
        q[JPEG_NATURAL_ORDER[10]] = -2;
        let enc = encode_one_block(&q);
        assert_eq!(enc.runs, vec![(2, 5), (6, -2)]);
    }

    #[test]
    fn masks_match_events() {
        let img = GrayImage::circle(32, 32);
        let encs = encode_image(&img);
        assert_eq!(encs.len(), 16);
        let masks = nonzero_masks(&encs);
        for (enc, mask) in encs.iter().zip(&masks) {
            for ev in &enc.events {
                assert_eq!(mask[ev.k], ev.nonzero);
            }
        }
    }

    #[test]
    fn perfect_masks_give_perfect_accuracy() {
        let img = GrayImage::glyphs(32, 32, 3);
        let masks = nonzero_masks(&encode_image(&img));
        assert_eq!(mask_accuracy(&masks, &masks), 1.0);
    }

    #[test]
    fn reconstruction_tracks_detail_structure() {
        let img = GrayImage::circle(64, 64);
        let truth_masks = nonzero_masks(&encode_image(&img));
        let stolen = reconstruct_from_masks(&truth_masks, 64, 64);
        // The reconstruction must put detail where the original has
        // edges: block energy maps correlate.
        let stolen_masks = nonzero_masks(&encode_image(&stolen));
        let e1 = energy_map(&truth_masks);
        let e2 = energy_map(&stolen_masks);
        let busy1: Vec<bool> = e1.iter().map(|&e| e > 0).collect();
        let busy2: Vec<bool> = e2.iter().map(|&e| e > 0).collect();
        let agree = busy1.iter().zip(&busy2).filter(|(a, b)| a == b).count();
        assert!(
            agree as f64 / busy1.len() as f64 > 0.85,
            "edge blocks must survive reconstruction ({agree}/{})",
            busy1.len()
        );
    }

    #[test]
    fn out_of_range_guard_counts() {
        let mut q = [0i32; DCT_SIZE2];
        q[JPEG_NATURAL_ORDER[1]] = 5000; // nbits = 13 > 10
        let enc = encode_one_block(&q);
        assert_eq!(enc.out_of_range, 1);
    }

    #[test]
    fn pgm_and_ascii_render() {
        let img = GrayImage::gradient(16, 16);
        let pgm = img.to_pgm();
        assert!(pgm.starts_with(b"P5\n16 16\n255\n"));
        assert_eq!(pgm.len(), 13 + 256);
        let ascii = img.to_ascii(16);
        assert!(ascii.lines().count() >= 4);
    }

    #[test]
    fn psnr_of_identical_images_is_infinite() {
        let img = GrayImage::glyphs(32, 32, 1);
        assert!(img.psnr(&img).is_infinite());
        let other = GrayImage::blank(32, 32);
        assert!(img.psnr(&other).is_finite());
    }
}
