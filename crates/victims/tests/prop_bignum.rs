//! Property tests for the bignum substrate: algebra checked against
//! u128 reference arithmetic and structural identities on large
//! operands, over seeded [`SimRng`] input loops.

use metaleak_sim::rng::SimRng;
use metaleak_victims::bignum::BigUint;
use metaleak_victims::modinv::mod_inverse;

fn from_u128(v: u128) -> BigUint {
    BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
}

fn u128_below(rng: &mut SimRng, bits: u32) -> u128 {
    let v = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
    v & ((1u128 << bits) - 1)
}

#[test]
fn add_matches_u128() {
    let mut rng = SimRng::seed_from(0xB16_0001);
    for _ in 0..192 {
        let a = u128_below(&mut rng, 100);
        let b = u128_below(&mut rng, 100);
        assert_eq!(from_u128(a).add(&from_u128(b)), from_u128(a + b));
    }
}

#[test]
fn sub_matches_u128() {
    let mut rng = SimRng::seed_from(0xB16_0002);
    for _ in 0..192 {
        let a = u128_below(&mut rng, 100);
        let b = u128_below(&mut rng, 100);
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        assert_eq!(from_u128(hi).sub(&from_u128(lo)), from_u128(hi - lo));
    }
}

#[test]
fn mul_matches_u128() {
    let mut rng = SimRng::seed_from(0xB16_0003);
    for _ in 0..192 {
        let a = u128_below(&mut rng, 60);
        let b = u128_below(&mut rng, 60);
        assert_eq!(from_u128(a).mul(&from_u128(b)), from_u128(a * b));
    }
}

#[test]
fn div_rem_matches_u128() {
    let mut rng = SimRng::seed_from(0xB16_0004);
    for _ in 0..192 {
        let a = u128_below(&mut rng, 100);
        let b = 1 + u128_below(&mut rng, 60);
        let (q, r) = from_u128(a).div_rem(&from_u128(b));
        assert_eq!(q, from_u128(a / b));
        assert_eq!(r, from_u128(a % b));
    }
}

#[test]
fn shifts_invert() {
    let mut rng = SimRng::seed_from(0xB16_0005);
    for _ in 0..192 {
        let a = u128_below(&mut rng, 90);
        let k = rng.index(70);
        let v = from_u128(a);
        assert_eq!(v.shl(k).shr(k), v);
    }
}

#[test]
fn karatsuba_equals_basecase() {
    let mut rng = SimRng::seed_from(0xB16_0006);
    for _ in 0..48 {
        let limbs_a: Vec<u64> = (0..16 + rng.index(8)).map(|_| rng.next_u64()).collect();
        let limbs_b: Vec<u64> = (0..16 + rng.index(8)).map(|_| rng.next_u64()).collect();
        let a = BigUint::from_limbs(limbs_a);
        let b = BigUint::from_limbs(limbs_b);
        assert_eq!(a.mul(&b), a.mul_basecase(&b));
    }
}

#[test]
fn distributivity() {
    let mut rng = SimRng::seed_from(0xB16_0007);
    for _ in 0..192 {
        let (a, b, c) =
            (u128_below(&mut rng, 50), u128_below(&mut rng, 50), u128_below(&mut rng, 50));
        let (ba, bb, bc) = (from_u128(a), from_u128(b), from_u128(c));
        assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
    }
}

#[test]
fn modpow_matches_reference() {
    let mut rng = SimRng::seed_from(0xB16_0008);
    for _ in 0..192 {
        let base = 1 + rng.below(999);
        let exp = rng.below(64);
        let modulus = 2 + rng.below(9998);
        let expect = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            acc as u64
        };
        assert_eq!(
            BigUint::from_u64(base).modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus)),
            BigUint::from_u64(expect)
        );
    }
}

#[test]
fn gcd_divides_both_and_is_maximal() {
    let mut rng = SimRng::seed_from(0xB16_0009);
    for _ in 0..192 {
        let a = 1 + rng.below(99_999);
        let b = 1 + rng.below(99_999);
        let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        let g64 = g.limbs().first().copied().unwrap_or(0);
        assert!(g64 > 0);
        assert_eq!(a % g64, 0);
        assert_eq!(b % g64, 0);
        // Euclid reference.
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        assert_eq!(g64, x);
    }
}

#[test]
fn mod_inverse_verifies_or_shares_a_factor() {
    let mut rng = SimRng::seed_from(0xB16_000A);
    for _ in 0..192 {
        let a = 2 + rng.below(9998);
        let m = 3 + rng.below(9997);
        let (ba, bm) = (BigUint::from_u64(a), BigUint::from_u64(m));
        match mod_inverse(&ba, &bm) {
            Some(inv) => {
                assert!(inv < bm);
                assert_eq!(ba.mul(&inv).rem(&bm), BigUint::one());
            }
            None => assert_ne!(ba.gcd(&bm), BigUint::one()),
        }
    }
}

#[test]
fn bits_roundtrip_msb_first() {
    let mut rng = SimRng::seed_from(0xB16_000B);
    for _ in 0..192 {
        let v = 1 + rng.below(u64::MAX - 1);
        let b = BigUint::from_u64(v);
        let bits = b.bits_msb_first();
        assert_eq!(bits.len(), 64 - v.leading_zeros() as usize);
        let mut acc = 0u64;
        for bit in bits {
            acc = (acc << 1) | bit as u64;
        }
        assert_eq!(acc, v);
    }
}
