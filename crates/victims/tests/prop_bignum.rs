//! Property tests for the bignum substrate: algebra checked against
//! u128 reference arithmetic and structural identities on large
//! operands.

use metaleak_victims::bignum::BigUint;
use metaleak_victims::modinv::mod_inverse;
use proptest::prelude::*;

fn from_u128(v: u128) -> BigUint {
    BigUint::from_limbs(vec![v as u64, (v >> 64) as u64])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn add_matches_u128(a in 0u128..1 << 100, b in 0u128..1 << 100) {
        prop_assert_eq!(from_u128(a).add(&from_u128(b)), from_u128(a + b));
    }

    #[test]
    fn sub_matches_u128(a in 0u128..1 << 100, b in 0u128..1 << 100) {
        let (hi, lo) = if a >= b { (a, b) } else { (b, a) };
        prop_assert_eq!(from_u128(hi).sub(&from_u128(lo)), from_u128(hi - lo));
    }

    #[test]
    fn mul_matches_u128(a in 0u128..1 << 60, b in 0u128..1 << 60) {
        prop_assert_eq!(from_u128(a).mul(&from_u128(b)), from_u128(a * b));
    }

    #[test]
    fn div_rem_matches_u128(a in 0u128..1 << 100, b in 1u128..1 << 60) {
        let (q, r) = from_u128(a).div_rem(&from_u128(b));
        prop_assert_eq!(q, from_u128(a / b));
        prop_assert_eq!(r, from_u128(a % b));
    }

    #[test]
    fn shifts_invert(a in 0u128..1 << 90, k in 0usize..70) {
        let v = from_u128(a);
        prop_assert_eq!(v.shl(k).shr(k), v);
    }

    #[test]
    fn karatsuba_equals_basecase(limbs_a in prop::collection::vec(any::<u64>(), 16..24),
                                  limbs_b in prop::collection::vec(any::<u64>(), 16..24)) {
        let a = BigUint::from_limbs(limbs_a);
        let b = BigUint::from_limbs(limbs_b);
        prop_assert_eq!(a.mul(&b), a.mul_basecase(&b));
    }

    #[test]
    fn distributivity(a in 0u128..1 << 50, b in 0u128..1 << 50, c in 0u128..1 << 50) {
        let (ba, bb, bc) = (from_u128(a), from_u128(b), from_u128(c));
        prop_assert_eq!(ba.mul(&bb.add(&bc)), ba.mul(&bb).add(&ba.mul(&bc)));
    }

    #[test]
    fn modpow_matches_reference(base in 1u64..1000, exp in 0u64..64, modulus in 2u64..10_000) {
        let expect = {
            let mut acc: u128 = 1;
            for _ in 0..exp {
                acc = acc * base as u128 % modulus as u128;
            }
            acc as u64
        };
        prop_assert_eq!(
            BigUint::from_u64(base).modpow(&BigUint::from_u64(exp), &BigUint::from_u64(modulus)),
            BigUint::from_u64(expect)
        );
    }

    #[test]
    fn gcd_divides_both_and_is_maximal(a in 1u64..100_000, b in 1u64..100_000) {
        let g = BigUint::from_u64(a).gcd(&BigUint::from_u64(b));
        let g64 = g.limbs().first().copied().unwrap_or(0);
        prop_assert!(g64 > 0);
        prop_assert_eq!(a % g64, 0);
        prop_assert_eq!(b % g64, 0);
        // Euclid reference.
        let (mut x, mut y) = (a, b);
        while y != 0 {
            let t = x % y;
            x = y;
            y = t;
        }
        prop_assert_eq!(g64, x);
    }

    #[test]
    fn mod_inverse_verifies_or_shares_a_factor(a in 2u64..10_000, m in 3u64..10_000) {
        let (ba, bm) = (BigUint::from_u64(a), BigUint::from_u64(m));
        match mod_inverse(&ba, &bm) {
            Some(inv) => {
                prop_assert!(inv < bm);
                prop_assert_eq!(ba.mul(&inv).rem(&bm), BigUint::one());
            }
            None => prop_assert_ne!(ba.gcd(&bm), BigUint::one()),
        }
    }

    #[test]
    fn bits_roundtrip_msb_first(v in 1u64..u64::MAX) {
        let b = BigUint::from_u64(v);
        let bits = b.bits_msb_first();
        prop_assert_eq!(bits.len(), 64 - v.leading_zeros() as usize);
        let mut acc = 0u64;
        for bit in bits {
            acc = (acc << 1) | bit as u64;
        }
        prop_assert_eq!(acc, v);
    }
}
