//! JPEG-victim pipeline tests: the full encode → leak-mask →
//! reconstruct loop, plus numeric properties of the DCT stage over
//! seeded [`SimRng`] input loops.

use metaleak_sim::rng::SimRng;
use metaleak_victims::jpeg::{
    dct2d, dequantize, encode_image, encode_one_block, idct2d, mask_accuracy, nonzero_masks,
    quantize, reconstruct_from_masks, GrayImage, DCT_SIZE2, JPEG_NATURAL_ORDER,
};

#[test]
fn full_pipeline_on_every_generator() {
    for (name, img) in [
        ("gradient", GrayImage::gradient(32, 32)),
        ("circle", GrayImage::circle(32, 32)),
        ("checkerboard", GrayImage::checkerboard(32, 32, 2)),
        ("glyphs", GrayImage::glyphs(32, 32, 7)),
        ("blank", GrayImage::blank(32, 32)),
    ] {
        let encodings = encode_image(&img);
        assert_eq!(encodings.len(), 16, "{name}");
        let masks = nonzero_masks(&encodings);
        let rebuilt = reconstruct_from_masks(&masks, 32, 32);
        assert_eq!((rebuilt.width, rebuilt.height), (32, 32), "{name}");
        assert_eq!(mask_accuracy(&masks, &masks), 1.0, "{name}");
        // Every block emits exactly 63 AC events.
        for e in &encodings {
            assert_eq!(e.events.len(), DCT_SIZE2 - 1, "{name}");
        }
    }
}

#[test]
fn busier_images_leak_more_events() {
    let flat = encode_image(&GrayImage::blank(32, 32));
    let busy = encode_image(&GrayImage::checkerboard(32, 32, 1));
    let count = |encs: &[metaleak_victims::jpeg::BlockEncoding]| -> usize {
        encs.iter().flat_map(|e| &e.events).filter(|ev| ev.nonzero).count()
    };
    assert_eq!(count(&flat), 0);
    assert!(count(&busy) > 16, "checkerboard must exercise the nbits path");
}

#[test]
fn corrupted_masks_degrade_accuracy_proportionally() {
    let img = GrayImage::glyphs(32, 32, 3);
    let truth = nonzero_masks(&encode_image(&img));
    let mut noisy = truth.clone();
    // Flip 10% of flags.
    let mut flipped = 0;
    let total = noisy.len() * 63;
    for (bi, mask) in noisy.iter_mut().enumerate() {
        for (k, flag) in mask.iter_mut().enumerate().skip(1) {
            if (bi * 63 + k) % 10 == 0 {
                *flag = !*flag;
                flipped += 1;
            }
        }
    }
    let acc = mask_accuracy(&noisy, &truth);
    let expect = 1.0 - flipped as f64 / total as f64;
    assert!((acc - expect).abs() < 1e-9, "acc {acc} expect {expect}");
}

/// The 8x8 DCT is orthonormal: round trip within float tolerance,
/// and Parseval's energy identity holds.
#[test]
fn dct_is_orthonormal() {
    let mut rng = SimRng::seed_from(0xD7C_0001);
    for _ in 0..48 {
        let mut samples = [0.0; DCT_SIZE2];
        for s in samples.iter_mut() {
            *s = rng.below(256) as f64 - 128.0;
        }
        let coefs = dct2d(&samples);
        let back = idct2d(&coefs);
        for (a, b) in samples.iter().zip(&back) {
            assert!((a - b).abs() < 1e-6);
        }
        let e_space: f64 = samples.iter().map(|s| s * s).sum();
        let e_freq: f64 = coefs.iter().map(|c| c * c).sum();
        assert!((e_space - e_freq).abs() < 1e-6 * e_space.max(1.0));
    }
}

/// encode_one_block events are complete and consistent with the
/// run-length output for arbitrary coefficient blocks.
#[test]
fn encode_events_match_runs() {
    let mut rng = SimRng::seed_from(0xD7C_0002);
    for _ in 0..48 {
        let mut q = [0i32; DCT_SIZE2];
        for c in q.iter_mut() {
            *c = rng.below(80) as i32 - 40;
        }
        let enc = encode_one_block(&q);
        // One event per AC index, in zigzag order.
        assert_eq!(enc.events.len(), 63);
        for (i, ev) in enc.events.iter().enumerate() {
            assert_eq!(ev.k, i + 1);
            assert_eq!(ev.nonzero, q[JPEG_NATURAL_ORDER[i + 1]] != 0);
        }
        // Runs reproduce the nonzero coefficients in order.
        let nonzeros: Vec<i32> =
            (1..DCT_SIZE2).map(|k| q[JPEG_NATURAL_ORDER[k]]).filter(|&c| c != 0).collect();
        let from_runs: Vec<i32> = enc.runs.iter().map(|&(_, c)| c).collect();
        assert_eq!(from_runs, nonzeros);
        // Run lengths + nonzeros account for all 63 positions up to the
        // last nonzero.
        let covered: u32 = enc.runs.iter().map(|&(r, _)| r + 1).sum();
        assert!(covered as usize <= 63);
    }
}

/// Quantize/dequantize is idempotent-ish: re-quantizing the
/// dequantized block returns the same quantized coefficients.
#[test]
fn quantization_is_stable() {
    let mut rng = SimRng::seed_from(0xD7C_0003);
    for _ in 0..48 {
        let mut samples = [0.0; DCT_SIZE2];
        for s in samples.iter_mut() {
            *s = rng.below(256) as f64 - 128.0;
        }
        let q1 = quantize(&dct2d(&samples));
        let q2 = quantize(&dequantize(&q1));
        assert_eq!(q1, q2);
    }
}
