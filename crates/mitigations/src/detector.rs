//! Timing-channel detection by auditing metadata-cache contention
//! (§II-A's third defense category: detection mechanisms that watch
//! shared resources for periodic, attack-like access patterns, in the
//! spirit of CC-Hunter \[51\] / COTSknight \[52\]).
//!
//! The MetaLeak-T covert channel drives the tree cache with a strongly
//! periodic miss pattern (one eviction burst + reload per bit window).
//! A defender sampling per-window miss counts can flag that
//! periodicity even without decoding the channel.

/// Normalized lag-autocorrelation peak of a sample series: 1.0 means
/// perfectly periodic at some lag, ~0 means uncorrelated. Returns 0
/// for constant or too-short series.
pub fn periodicity_score(samples: &[u64]) -> f64 {
    if samples.len() < 8 {
        return 0.0;
    }
    let n = samples.len();
    let mean = samples.iter().sum::<u64>() as f64 / n as f64;
    let centered: Vec<f64> = samples.iter().map(|&s| s as f64 - mean).collect();
    let var: f64 = centered.iter().map(|c| c * c).sum();
    if var == 0.0 {
        return 0.0;
    }
    let mut best: f64 = 0.0;
    for lag in 1..=(n / 2) {
        let mut acc = 0.0;
        for i in 0..n - lag {
            acc += centered[i] * centered[i + lag];
        }
        // Normalize by the overlapping-window variance.
        let score = acc / var * n as f64 / (n - lag) as f64;
        best = best.max(score);
    }
    best.clamp(0.0, 1.0)
}

/// Burstiness (coefficient of variation) of a sample series: covert
/// traffic shows high regular bursts; background traffic is smoother
/// or irregular.
pub fn burstiness(samples: &[u64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<u64>() as f64 / n;
    if mean == 0.0 {
        return 0.0;
    }
    let var = samples.iter().map(|&s| (s as f64 - mean).powi(2)).sum::<f64>() / n;
    var.sqrt() / mean
}

/// Verdict of the metadata-contention auditor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DetectionVerdict {
    /// Periodicity of the miss series.
    pub periodicity: f64,
    /// Burstiness of the miss series.
    pub burstiness: f64,
    /// Whether the series is flagged as a potential covert channel.
    pub flagged: bool,
}

/// A sliding auditor over per-window metadata-cache miss counts.
///
/// Two signatures are flagged (both seen in MetaLeak covert traffic,
/// depending on the sampling granularity relative to the bit window):
///
/// 1. **periodic** bursts — the eviction/probe alternation shows up as
///    a strong autocorrelation peak when windows are finer than a bit;
/// 2. **metronomic saturation** — when windows align with bit
///    boundaries, every window carries the same heavy eviction load
///    (near-zero coefficient of variation at high mean), which no
///    natural workload sustains.
#[derive(Debug, Clone)]
pub struct ContentionDetector {
    /// Periodicity threshold above which traffic is flagged.
    pub periodicity_threshold: f64,
    /// Burstiness (CV) below which sustained traffic counts as
    /// metronomic.
    pub max_constancy: f64,
    /// Minimum mean misses/window for the alarm to arm (quiet traffic
    /// cannot carry a channel).
    pub min_activity: f64,
}

impl Default for ContentionDetector {
    fn default() -> Self {
        ContentionDetector { periodicity_threshold: 0.6, max_constancy: 0.1, min_activity: 4.0 }
    }
}

/// One operating point of a detector threshold sweep: the periodicity
/// threshold tried, with the resulting true-positive and
/// false-positive rates over the labelled trace sets.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SweepPoint {
    /// Periodicity threshold the detector ran with.
    pub threshold: f64,
    /// Fraction of covert (positive) traces flagged.
    pub tpr: f64,
    /// Fraction of benign (negative) traces flagged.
    pub fpr: f64,
}

impl ContentionDetector {
    /// Returns a copy with a different periodicity threshold (the
    /// sweep axis of the ROC analysis; the other knobs stay put).
    pub fn with_periodicity_threshold(&self, threshold: f64) -> Self {
        ContentionDetector { periodicity_threshold: threshold, ..self.clone() }
    }

    /// The detector's continuous suspicion score for a trace,
    /// independent of any threshold: the periodicity peak, raised to
    /// 1.0 when the metronomic-saturation signature fires (which the
    /// boolean verdict treats as equally damning), and floored to 0.0
    /// when the trace is too quiet to carry a channel. ROC analysis in
    /// `metaleak-analysis` consumes these raw scores directly.
    pub fn score(&self, samples: &[u64]) -> f64 {
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        if mean < self.min_activity {
            return 0.0;
        }
        if samples.len() >= 8 && burstiness(samples) <= self.max_constancy {
            return 1.0;
        }
        periodicity_score(samples)
    }

    /// Threshold-sweep hook for ROC analysis: audits every labelled
    /// trace (`positives` = covert traffic, `negatives` = benign) at
    /// each periodicity threshold and reports the operating points in
    /// the order given. A threshold of `t` flags exactly the traces
    /// the full [`ContentionDetector::audit`] verdict would flag with
    /// `periodicity_threshold = t`, so the curve reflects the deployed
    /// detector, not just the raw score distribution.
    pub fn threshold_sweep(
        &self,
        positives: &[Vec<u64>],
        negatives: &[Vec<u64>],
        thresholds: &[f64],
    ) -> Vec<SweepPoint> {
        let flagged_rate = |traces: &[Vec<u64>], d: &ContentionDetector| {
            if traces.is_empty() {
                return 0.0;
            }
            let hits = traces.iter().filter(|t| d.audit(t).flagged).count();
            hits as f64 / traces.len() as f64
        };
        thresholds
            .iter()
            .map(|&t| {
                let d = self.with_periodicity_threshold(t);
                SweepPoint {
                    threshold: t,
                    tpr: flagged_rate(positives, &d),
                    fpr: flagged_rate(negatives, &d),
                }
            })
            .collect()
    }

    /// Audits a series of per-window miss counts.
    pub fn audit(&self, samples: &[u64]) -> DetectionVerdict {
        let periodicity = periodicity_score(samples);
        let b = burstiness(samples);
        let mean = if samples.is_empty() {
            0.0
        } else {
            samples.iter().sum::<u64>() as f64 / samples.len() as f64
        };
        let suspicious = periodicity >= self.periodicity_threshold
            || (samples.len() >= 8 && b <= self.max_constancy);
        DetectionVerdict {
            periodicity,
            burstiness: b,
            flagged: mean >= self.min_activity && suspicious,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaleak_sim::rng::SimRng;

    #[test]
    fn periodic_series_scores_high() {
        // A clean two-phase pattern (evict burst, quiet probe).
        let samples: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 40 } else { 2 }).collect();
        assert!(periodicity_score(&samples) > 0.8);
    }

    #[test]
    fn random_series_scores_low() {
        let mut rng = SimRng::seed_from(5);
        let samples: Vec<u64> = (0..64).map(|_| rng.below(40)).collect();
        assert!(periodicity_score(&samples) < 0.5, "{}", periodicity_score(&samples));
    }

    #[test]
    fn constant_and_short_series_scores() {
        assert_eq!(periodicity_score(&[5; 32]), 0.0);
        assert_eq!(periodicity_score(&[1, 2, 3]), 0.0);
        assert_eq!(burstiness(&[]), 0.0);
        // Sustained metronomic load IS flagged (signature 2)...
        let d = ContentionDetector::default();
        assert!(d.audit(&[30; 32]).flagged);
        // ...but a short constant burst is not enough evidence.
        assert!(!d.audit(&[30; 4]).flagged);
    }

    fn covert_trace(rng: &mut SimRng) -> Vec<u64> {
        (0..64).map(|i| if i % 2 == 0 { 28 + rng.below(5) } else { 1 + rng.below(2) }).collect()
    }

    fn benign_trace(rng: &mut SimRng) -> Vec<u64> {
        (0..64).map(|_| 10 + rng.below(30)).collect()
    }

    #[test]
    fn sweep_trades_tpr_against_fpr_monotonically() {
        let mut rng = SimRng::seed_from(31);
        let positives: Vec<Vec<u64>> = (0..16).map(|_| covert_trace(&mut rng)).collect();
        let negatives: Vec<Vec<u64>> = (0..16).map(|_| benign_trace(&mut rng)).collect();
        let thresholds: Vec<f64> = (0..=10).map(|i| i as f64 / 10.0).collect();
        let points =
            ContentionDetector::default().threshold_sweep(&positives, &negatives, &thresholds);
        assert_eq!(points.len(), thresholds.len());
        // Raising the threshold can only lower both rates.
        for w in points.windows(2) {
            assert!(w[1].tpr <= w[0].tpr + 1e-12);
            assert!(w[1].fpr <= w[0].fpr + 1e-12);
        }
        // At a threshold of 0 everything active is flagged; covert
        // traces must dominate benign ones somewhere in the middle.
        assert_eq!(points[0].tpr, 1.0);
        let separated = points.iter().any(|p| p.tpr >= 0.9 && p.fpr <= 0.2);
        assert!(separated, "no operating point separates covert from benign: {points:?}");
    }

    #[test]
    fn sweep_handles_empty_trace_sets() {
        let points = ContentionDetector::default().threshold_sweep(&[], &[], &[0.5]);
        assert_eq!(points, vec![SweepPoint { threshold: 0.5, tpr: 0.0, fpr: 0.0 }]);
    }

    #[test]
    fn score_matches_verdict_signatures() {
        let d = ContentionDetector::default();
        // Quiet traces score zero regardless of shape.
        let quiet: Vec<u64> = (0..64).map(|i| (i % 2) as u64).collect();
        assert_eq!(d.score(&quiet), 0.0);
        // Metronomic saturation scores 1.0 (signature 2).
        assert_eq!(d.score(&[30; 32]), 1.0);
        // Periodic active traffic scores its periodicity peak.
        let covert: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 30 } else { 1 }).collect();
        assert!((d.score(&covert) - periodicity_score(&covert)).abs() < 1e-12);
        assert!(d.score(&covert) > 0.8);
        assert_eq!(d.score(&[]), 0.0);
    }

    #[test]
    fn with_periodicity_threshold_keeps_other_knobs() {
        let d = ContentionDetector::default().with_periodicity_threshold(0.3);
        assert_eq!(d.periodicity_threshold, 0.3);
        assert_eq!(d.max_constancy, ContentionDetector::default().max_constancy);
        assert_eq!(d.min_activity, ContentionDetector::default().min_activity);
    }

    #[test]
    fn detector_flags_only_active_periodic_traffic() {
        let d = ContentionDetector::default();
        let covert: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 30 } else { 1 }).collect();
        assert!(d.audit(&covert).flagged);
        // Periodic but almost idle: not flagged.
        let quiet: Vec<u64> = (0..64).map(|i| (i % 2) as u64).collect();
        assert!(!d.audit(&quiet).flagged);
        // Active but aperiodic: not flagged.
        let mut rng = SimRng::seed_from(9);
        let noisy: Vec<u64> = (0..64).map(|_| 20 + rng.below(30)).collect();
        assert!(!d.audit(&noisy).flagged);
    }
}
