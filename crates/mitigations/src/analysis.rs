//! The defense-vs-attack effectiveness matrix of §IX: which mainstream
//! microarchitectural mitigations stop which attacks, and why MetaLeak
//! survives them.

/// Attack families discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attack {
    /// Conflict-based cache attacks (Prime+Probe \[2\]).
    PrimeProbe,
    /// Shared-memory reload attacks (Flush+Reload \[3\]).
    FlushReload,
    /// MetaLeak-T: shared integrity-tree nodes, mEvict+mReload.
    MetaLeakT,
    /// MetaLeak-C: shared tree counters, mPreset+mOverflow.
    MetaLeakC,
}

/// Defense families discussed in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Defense {
    /// Randomized set mapping (CEASER \[43\], MIRAGE \[28\],
    /// ScatterCache \[98\]).
    CacheRandomization,
    /// Way/set partitioning of shared caches (DAWG \[30\],
    /// Catalyst \[31\]).
    CachePartitioning,
    /// Disabling/auditing cross-domain data sharing (defeats
    /// Flush+Reload-class attacks).
    NoSharedData,
    /// Per-domain isolated integrity trees (§IX-C, future work).
    TreePartitioning,
    /// Counter zeroing / virtual-address-bound encryption counters
    /// (§IX-C; encryption counters only).
    CounterIsolation,
}

/// Whether a defense stops an attack, per the paper's analysis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effectiveness {
    /// The attack is defeated.
    Stops,
    /// The attack still works.
    Ineffective,
    /// Partially mitigates (raises cost without closing the channel).
    Partial,
}

/// The paper's conclusion for a (defense, attack) pair, with the §IX
/// reasoning.
pub fn evaluate(defense: Defense, attack: Attack) -> (Effectiveness, &'static str) {
    use Attack::*;
    use Defense::*;
    use Effectiveness::*;
    match (defense, attack) {
        (CacheRandomization, PrimeProbe) => (Stops, "no stable eviction sets can be built"),
        (CacheRandomization, FlushReload) => {
            (Ineffective, "reload of genuinely shared lines needs no eviction set")
        }
        (CacheRandomization, MetaLeakT) => (
            Ineffective,
            "mReload monitors a shared metadata block; ~7000 random accesses evict it >90% of the time (Fig. 18)",
        ),
        (CacheRandomization, MetaLeakC) => {
            (Ineffective, "counter-overflow timing is not cache timing")
        }
        (CachePartitioning, PrimeProbe) => (Stops, "no cross-domain set contention"),
        (CachePartitioning, FlushReload) => {
            (Partial, "shared lines can still be flushed unless duplication is added")
        }
        (CachePartitioning, MetaLeakT) => (
            Ineffective,
            "the integrity tree is writable shared state; duplication breaks coherence (§IX-A)",
        ),
        (CachePartitioning, MetaLeakC) => {
            (Ineffective, "counter state is architectural, not cache-resident")
        }
        (NoSharedData, PrimeProbe) => (Ineffective, "contention needs no sharing"),
        (NoSharedData, FlushReload) => (Stops, "nothing shared to flush or reload"),
        (NoSharedData, MetaLeakT) => (
            Ineffective,
            "tree-node sharing is universal by design, independent of data sharing (§IV-C)",
        ),
        (NoSharedData, MetaLeakC) => {
            (Ineffective, "tree counters aggregate writes across domains regardless")
        }
        (TreePartitioning, MetaLeakT) => {
            (Stops, "no non-root node shared between mutually distrusting domains")
        }
        (TreePartitioning, MetaLeakC) => {
            (Stops, "tree counters are per-domain, so no cross-domain modulation")
        }
        (TreePartitioning, PrimeProbe | FlushReload) => {
            (Ineffective, "tree partitioning does not change the data caches")
        }
        (CounterIsolation, MetaLeakC) => (
            Partial,
            "clears encryption counters across domains but cannot protect tree counters (§IX-C)",
        ),
        (CounterIsolation, _) => (Ineffective, "encryption-counter-only measure"),
    }
}

/// All pairs, for table rendering.
pub fn full_matrix() -> Vec<(Defense, Attack, Effectiveness, &'static str)> {
    let defenses = [
        Defense::CacheRandomization,
        Defense::CachePartitioning,
        Defense::NoSharedData,
        Defense::TreePartitioning,
        Defense::CounterIsolation,
    ];
    let attacks = [Attack::PrimeProbe, Attack::FlushReload, Attack::MetaLeakT, Attack::MetaLeakC];
    let mut out = Vec::new();
    for d in defenses {
        for a in attacks {
            let (e, why) = evaluate(d, a);
            out.push((d, a, e, why));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn metaleak_survives_mainstream_defenses() {
        for d in [Defense::CacheRandomization, Defense::CachePartitioning, Defense::NoSharedData] {
            for a in [Attack::MetaLeakT, Attack::MetaLeakC] {
                let (e, _) = evaluate(d, a);
                assert_eq!(e, Effectiveness::Ineffective, "{d:?} vs {a:?}");
            }
        }
    }

    #[test]
    fn tree_partitioning_is_the_fix() {
        assert_eq!(evaluate(Defense::TreePartitioning, Attack::MetaLeakT).0, Effectiveness::Stops);
        assert_eq!(evaluate(Defense::TreePartitioning, Attack::MetaLeakC).0, Effectiveness::Stops);
    }

    #[test]
    fn classic_defenses_still_stop_classic_attacks() {
        assert_eq!(
            evaluate(Defense::CacheRandomization, Attack::PrimeProbe).0,
            Effectiveness::Stops
        );
        assert_eq!(evaluate(Defense::NoSharedData, Attack::FlushReload).0, Effectiveness::Stops);
    }

    #[test]
    fn matrix_is_complete() {
        assert_eq!(full_matrix().len(), 20);
    }
}
