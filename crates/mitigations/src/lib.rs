//! # metaleak-mitigations
//!
//! Defense models for the MetaLeak study (§IX):
//!
//! - [`mirage`] — a MIRAGE-style randomized cache, used to show that
//!   state-of-the-art cache randomization does not stop mEvict
//!   (Figure 18);
//! - [`partition`] — static per-domain integrity-tree partitioning with
//!   its stranding and re-hash cost model;
//! - [`dynamic`] — the paper's §IX-C proposal: per-domain *dynamic*
//!   trees that grow on demand, with counter clearing on reassignment
//!   and the runtime re-hash overhead it warns about;
//! - [`detector`] — a CC-Hunter-style auditor flagging periodic
//!   metadata-cache contention (covert-channel detection);
//! - [`analysis`] — the defense-vs-attack effectiveness matrix.

#![warn(missing_docs)]

pub mod analysis;
pub mod detector;
pub mod dynamic;
pub mod mirage;
pub mod partition;

pub use analysis::{evaluate, Attack, Defense, Effectiveness};
pub use detector::{ContentionDetector, DetectionVerdict, SweepPoint};
pub use dynamic::{DomainId, DynamicDomainForest, ForestError, GrowthReport};
pub use mirage::{eviction_probability, MirageCache, MirageConfig};
pub use partition::{PartitionError, TreePartition};
