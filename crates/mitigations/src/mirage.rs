//! A MIRAGE-style randomized cache model (Saileshwar & Qureshi,
//! USENIX Security'21), used to evaluate whether state-of-the-art
//! cache randomization stops MetaLeak (§IX-B, Figure 18).
//!
//! MIRAGE decouples tags from data: each skew's tag store has extra
//! invalid ways (base 8 + 6 extra per skew in the paper's secure
//! configuration), placement picks the less-loaded of two skewed,
//! key-hashed sets, and evictions are *global random* — any resident
//! line may be the victim. This removes set-conflict eviction (defeats
//! Prime+Probe) but an attacker who simply installs many blocks still
//! evicts a target with probability `1 - (1 - 1/N)^k` — which is all
//! MetaLeak's mEvict needs.

use metaleak_sim::rng::SimRng;
use std::collections::HashMap;

/// Configuration of the randomized cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MirageConfig {
    /// Data-store capacity in lines (e.g. a 256 KB metadata cache
    /// holds 4096 64-byte lines).
    pub data_lines: usize,
    /// Base ways per skew (8 in the paper's MIRAGE configuration).
    pub base_ways: usize,
    /// Extra (invalid) ways per skew (6 in the secure configuration).
    pub extra_ways: usize,
}

impl Default for MirageConfig {
    fn default() -> Self {
        // 16-way 256 KB metadata cache (§IX-B).
        MirageConfig { data_lines: 4096, base_ways: 8, extra_ways: 6 }
    }
}

impl MirageConfig {
    /// Tag-store sets per skew: the tag store is provisioned so that
    /// `2 * sets * base_ways = data_lines`.
    pub fn sets_per_skew(&self) -> usize {
        (self.data_lines / (2 * self.base_ways)).max(1)
    }

    /// Ways per skew in the tag store.
    pub fn ways_per_skew(&self) -> usize {
        self.base_ways + self.extra_ways
    }
}

/// The randomized cache.
#[derive(Debug, Clone)]
pub struct MirageCache {
    config: MirageConfig,
    /// Tag store: per skew, per set, resident block ids.
    tags: [Vec<Vec<u64>>; 2],
    /// Which (skew, set) each resident block occupies.
    resident: HashMap<u64, (usize, usize)>,
    /// Keyed randomization of the set mapping.
    keys: [u64; 2],
    rng: SimRng,
}

impl MirageCache {
    /// Creates an empty cache with fresh random mapping keys from
    /// `seed`.
    pub fn new(config: MirageConfig, seed: u64) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let sets = config.sets_per_skew();
        MirageCache {
            config,
            tags: [vec![Vec::new(); sets], vec![Vec::new(); sets]],
            resident: HashMap::new(),
            keys: [rng.next_u64(), rng.next_u64()],
            rng,
        }
    }

    fn set_of(&self, skew: usize, block: u64) -> usize {
        // Keyed mixing (stand-in for MIRAGE's PRINCE-based hash).
        let mut x = block ^ self.keys[skew];
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 29;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        (x % self.config.sets_per_skew() as u64) as usize
    }

    /// Whether `block` is resident.
    pub fn contains(&self, block: u64) -> bool {
        self.resident.contains_key(&block)
    }

    /// Number of resident lines.
    pub fn len(&self) -> usize {
        self.resident.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.resident.is_empty()
    }

    /// Accesses `block`: a hit refreshes nothing (random replacement
    /// has no recency state); a miss installs the block, evicting a
    /// uniformly random resident line when the data store is full.
    /// Returns `(hit, evicted_block)`.
    pub fn access(&mut self, block: u64) -> (bool, Option<u64>) {
        if self.contains(block) {
            return (true, None);
        }
        let mut evicted = None;
        // Global random eviction when the data store is at capacity.
        if self.resident.len() >= self.config.data_lines {
            let victim = self.random_resident();
            self.remove(victim);
            evicted = Some(victim);
        }
        // Power-of-two-choices placement into the less-loaded skewed set.
        let s0 = self.set_of(0, block);
        let s1 = self.set_of(1, block);
        let (skew, set) =
            if self.tags[0][s0].len() <= self.tags[1][s1].len() { (0, s0) } else { (1, s1) };
        // A full tag set despite the extra ways is a "set associativity
        // eviction" — vanishingly rare in MIRAGE; fall back to evicting
        // within the set to stay well-defined.
        if self.tags[skew][set].len() >= self.config.ways_per_skew() {
            let idx = self.rng.index(self.tags[skew][set].len());
            let victim = self.tags[skew][set][idx];
            self.remove(victim);
            evicted = Some(victim);
        }
        self.tags[skew][set].push(block);
        self.resident.insert(block, (skew, set));
        (false, evicted)
    }

    fn random_resident(&mut self) -> u64 {
        // Uniform over resident lines: pick a random occupied tag slot.
        loop {
            let skew = self.rng.index(2);
            let set = self.rng.index(self.config.sets_per_skew());
            let ways = &self.tags[skew][set];
            if !ways.is_empty() {
                return ways[self.rng.index(ways.len())];
            }
        }
    }

    fn remove(&mut self, block: u64) {
        if let Some((skew, set)) = self.resident.remove(&block) {
            self.tags[skew][set].retain(|&b| b != block);
        }
    }
}

/// One point of the Figure 18 experiment: probability that a target
/// block is evicted after `accesses` random block installs, averaged
/// over `trials` trials.
pub fn eviction_probability(
    config: MirageConfig,
    accesses: usize,
    trials: usize,
    seed: u64,
) -> f64 {
    let mut evictions = 0;
    for t in 0..trials {
        let mut cache = MirageCache::new(config, seed.wrapping_add(t as u64));
        // Warm the cache to capacity with a disjoint working set, as a
        // busy system would be.
        for b in 0..config.data_lines as u64 {
            cache.access(1_000_000 + b);
        }
        let target = 42u64;
        cache.access(target);
        // The attacker accesses `accesses` random blocks...
        for i in 0..accesses {
            cache.access(2_000_000 + (t * accesses + i) as u64);
        }
        // ...and checks whether the target was displaced.
        if !cache.contains(target) {
            evictions += 1;
        }
    }
    evictions as f64 / trials.max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> MirageConfig {
        MirageConfig { data_lines: 256, base_ways: 8, extra_ways: 6 }
    }

    #[test]
    fn hit_after_install() {
        let mut c = MirageCache::new(small(), 1);
        assert_eq!(c.access(7), (false, None));
        assert_eq!(c.access(7), (true, None));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn capacity_is_respected_with_global_eviction() {
        let mut c = MirageCache::new(small(), 2);
        for b in 0..1000u64 {
            c.access(b);
        }
        assert_eq!(c.len(), 256, "data store capacity bounds residency");
    }

    #[test]
    fn same_block_maps_to_stable_sets() {
        let c = MirageCache::new(small(), 3);
        assert_eq!(c.set_of(0, 99), c.set_of(0, 99));
        // Different keys per skew: mapping generally differs.
        let collisions = (0..64u64).filter(|&b| c.set_of(0, b) == c.set_of(1, b)).count();
        assert!(collisions < 32, "skews must hash independently");
    }

    #[test]
    fn eviction_probability_grows_with_accesses() {
        let cfg = small();
        let p_small = eviction_probability(cfg, 64, 40, 7);
        let p_large = eviction_probability(cfg, 1024, 40, 7);
        assert!(p_large > p_small, "{p_large} <= {p_small}");
        assert!(p_large > 0.9, "1024 accesses into 256 lines must almost surely evict");
    }

    #[test]
    fn eviction_probability_matches_coupon_model() {
        // P(evicted) ~= 1 - (1 - 1/N)^k for global random eviction.
        let cfg = small();
        let k = 256;
        let p = eviction_probability(cfg, k, 80, 11);
        let model = 1.0 - (1.0 - 1.0 / cfg.data_lines as f64).powi(k as i32);
        assert!((p - model).abs() < 0.15, "measured {p} vs model {model}");
    }

    #[test]
    fn no_recency_means_hits_do_not_protect() {
        // Even repeatedly touching the target does not shield it from
        // random eviction (unlike LRU).
        let cfg = small();
        let mut c = MirageCache::new(cfg, 13);
        for b in 0..cfg.data_lines as u64 {
            c.access(10_000 + b);
        }
        c.access(1);
        let mut survived = 0;
        for i in 0..200u64 {
            c.access(1); // touch
            c.access(20_000 + i);
            if c.contains(1) {
                survived += 1;
            }
        }
        assert!(survived < 200, "touching must not pin the line");
    }
}
