//! Dynamic per-domain integrity trees (§IX-C): the mitigation the
//! paper proposes as future work — each security domain gets an
//! isolated tree whose coverage *grows on demand*, with counter
//! clearing on reassignment, at the price of runtime re-hash and
//! repositioning overhead.

use metaleak_meta::geometry::TreeGeometry;
use std::collections::HashMap;

/// Identifier of a security domain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DomainId(pub u32);

/// Errors from the dynamic forest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ForestError {
    /// No free leaves remain.
    OutOfLeaves {
        /// Leaves requested.
        requested: u64,
        /// Leaves free.
        free: u64,
    },
    /// Unknown domain.
    NoSuchDomain(DomainId),
}

impl core::fmt::Display for ForestError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ForestError::OutOfLeaves { requested, free } => {
                write!(f, "requested {requested} leaves but only {free} are free")
            }
            ForestError::NoSuchDomain(d) => write!(f, "unknown domain {d:?}"),
        }
    }
}

impl std::error::Error for ForestError {}

/// Report of a growth operation: the §IX-C overhead the paper warns
/// about (chained re-hashing and node re-positioning on the critical
/// path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GrowthReport {
    /// Leaves newly assigned to the domain.
    pub leaves_added: u64,
    /// Node-hash operations to splice the new leaves into the domain's
    /// private tree (new leaves + re-hash of the path to the domain
    /// root, which may deepen).
    pub rehash_ops: u64,
    /// Whether the domain's private tree gained a level (repositioning
    /// every existing node's parent links).
    pub tree_deepened: bool,
}

#[derive(Debug, Clone)]
struct DomainState {
    leaves: Vec<u64>,
    /// Depth of the domain's private tree over its leaves.
    depth: u32,
}

/// A forest of per-domain dynamic integrity trees over a shared pool
/// of leaf groups. No leaf is ever shared between two live domains,
/// and leaves reassigned from a destroyed domain have their counters
/// cleared first (the §IX-C requirement for encryption counters).
#[derive(Debug, Clone)]
pub struct DynamicDomainForest {
    /// Leaf capacity (one "leaf group" = one physical tree leaf's worth
    /// of counter blocks).
    total_leaves: u64,
    /// Attached counter blocks per leaf.
    leaf_span: u64,
    /// Private-tree arity for depth accounting.
    arity: u64,
    free: Vec<u64>,
    domains: HashMap<DomainId, DomainState>,
    next_id: u32,
    /// Leaves whose counters were cleared on reclaim (audit trail).
    cleared: Vec<u64>,
}

impl DynamicDomainForest {
    /// Builds a forest over the leaf space of `geometry`.
    pub fn new(geometry: &TreeGeometry) -> Self {
        DynamicDomainForest {
            total_leaves: geometry.nodes_at(0),
            leaf_span: geometry.arity(0) as u64,
            arity: geometry.arity(1.min(geometry.levels() - 1)) as u64,
            free: (0..geometry.nodes_at(0)).rev().collect(),
            domains: HashMap::new(),
            next_id: 0,
            cleared: Vec::new(),
        }
    }

    /// Creates an empty domain.
    pub fn create_domain(&mut self) -> DomainId {
        let id = DomainId(self.next_id);
        self.next_id += 1;
        self.domains.insert(id, DomainState { leaves: Vec::new(), depth: 0 });
        id
    }

    /// Number of free leaves.
    pub fn free_leaves(&self) -> u64 {
        self.free.len() as u64
    }

    fn depth_for(&self, leaves: u64) -> u32 {
        if leaves <= 1 {
            return 1;
        }
        let mut depth = 1;
        let mut cap = 1u64;
        while cap < leaves {
            cap *= self.arity;
            depth += 1;
        }
        depth
    }

    /// Grows `domain` by enough leaves to cover `extra_cbs` more
    /// counter blocks, returning the overhead report.
    ///
    /// # Errors
    /// [`ForestError::OutOfLeaves`] / [`ForestError::NoSuchDomain`].
    pub fn grow(&mut self, domain: DomainId, extra_cbs: u64) -> Result<GrowthReport, ForestError> {
        let need = extra_cbs.div_ceil(self.leaf_span).max(1);
        if (self.free.len() as u64) < need {
            return Err(ForestError::OutOfLeaves { requested: need, free: self.free.len() as u64 });
        }
        let arity = self.arity;
        let new_depth_of = |leaves: u64, me: &Self| me.depth_for(leaves);
        let state = self.domains.get_mut(&domain).ok_or(ForestError::NoSuchDomain(domain))?;
        let old_depth = state.depth;
        let mut added = 0;
        for _ in 0..need {
            let leaf = self.free.pop().expect("checked above");
            state.leaves.push(leaf);
            added += 1;
        }
        let total = state.leaves.len() as u64;
        // Depth accounting without double-borrowing self:
        let mut depth = 1;
        let mut cap = 1u64;
        while cap < total {
            cap *= arity;
            depth += 1;
        }
        let _ = new_depth_of;
        state.depth = depth;
        let tree_deepened = depth > old_depth;
        // Overheads: hash each new leaf, re-hash its path (depth), and
        // on deepening, re-position + re-hash the whole existing tree.
        let rehash_ops =
            added * depth as u64 + if tree_deepened { total.saturating_sub(added) } else { 0 };
        Ok(GrowthReport { leaves_added: added, rehash_ops, tree_deepened })
    }

    /// Destroys a domain, clearing the counters of its leaves before
    /// returning them to the free pool (§IX-C: stale counter state must
    /// never be visible to the next owner).
    ///
    /// # Errors
    /// [`ForestError::NoSuchDomain`].
    pub fn destroy_domain(&mut self, domain: DomainId) -> Result<u64, ForestError> {
        let state = self.domains.remove(&domain).ok_or(ForestError::NoSuchDomain(domain))?;
        let reclaimed = state.leaves.len() as u64;
        for leaf in state.leaves {
            self.cleared.push(leaf);
            self.free.push(leaf);
        }
        Ok(reclaimed)
    }

    /// The domain owning the leaf that covers counter block `cb`, if
    /// any.
    pub fn owner_of(&self, cb: u64) -> Option<DomainId> {
        let leaf = cb / self.leaf_span;
        self.domains.iter().find(|(_, s)| s.leaves.contains(&leaf)).map(|(id, _)| *id)
    }

    /// Isolation invariant: no leaf owned by two domains.
    pub fn is_isolated(&self) -> bool {
        let mut seen = std::collections::HashSet::new();
        for s in self.domains.values() {
            for &l in &s.leaves {
                if !seen.insert(l) {
                    return false;
                }
            }
        }
        true
    }

    /// Whether `leaf` went through counter clearing since the start.
    pub fn was_cleared(&self, leaf: u64) -> bool {
        self.cleared.contains(&leaf)
    }

    /// Fraction of leaves currently assigned (anti-stranding metric:
    /// dynamic growth keeps this near demand, unlike static partitions).
    pub fn utilization(&self) -> f64 {
        1.0 - self.free.len() as f64 / self.total_leaves.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaleak_meta::geometry::TreeGeometry;

    fn forest() -> DynamicDomainForest {
        DynamicDomainForest::new(&TreeGeometry::sct(16384))
    }

    #[test]
    fn domains_grow_on_demand_and_stay_isolated() {
        let mut f = forest();
        let a = f.create_domain();
        let b = f.create_domain();
        f.grow(a, 100).unwrap();
        f.grow(b, 300).unwrap();
        f.grow(a, 1000).unwrap();
        assert!(f.is_isolated());
        assert_ne!(f.owner_of(0), None);
    }

    #[test]
    fn growth_reports_rehash_overhead() {
        let mut f = forest();
        let d = f.create_domain();
        let r1 = f.grow(d, 32).unwrap();
        assert_eq!(r1.leaves_added, 1);
        assert!(r1.rehash_ops >= 1);
        // A large growth deepens the tree and re-hashes the old nodes.
        let r2 = f.grow(d, 32 * 300).unwrap();
        assert!(r2.tree_deepened);
        assert!(r2.rehash_ops > r2.leaves_added, "deepening repositions existing nodes");
    }

    #[test]
    fn destroy_clears_and_recycles_leaves() {
        let mut f = forest();
        let a = f.create_domain();
        f.grow(a, 64).unwrap();
        let first_leaf_cb = 0u64; // leaf 0 covers cbs 0..32
        assert_eq!(f.owner_of(first_leaf_cb), Some(a));
        let reclaimed = f.destroy_domain(a).unwrap();
        assert_eq!(reclaimed, 2);
        assert_eq!(f.owner_of(first_leaf_cb), None);
        // Reassignment: a new domain gets the cleared leaves.
        let b = f.create_domain();
        f.grow(b, 64).unwrap();
        let leaf = 0;
        assert!(f.was_cleared(leaf), "recycled leaf must have been cleared");
        assert_eq!(f.owner_of(first_leaf_cb), Some(b));
    }

    #[test]
    fn exhaustion_is_reported() {
        let mut f = DynamicDomainForest::new(&TreeGeometry::sct(64));
        let d = f.create_domain();
        assert!(f.grow(d, 64 * 32).is_err());
        assert!(matches!(f.grow(DomainId(99), 1), Err(ForestError::NoSuchDomain(_))));
    }

    #[test]
    fn utilization_tracks_demand() {
        let mut f = forest();
        assert_eq!(f.utilization(), 0.0);
        let d = f.create_domain();
        // The sct(16384) geometry has 512 leaves x 32 cbs; claim half.
        f.grow(d, 16384 / 2).unwrap();
        assert!((f.utilization() - 0.5).abs() < 0.01, "{}", f.utilization());
    }
}
