//! Per-domain integrity-tree partitioning (§IX-C): the mitigation the
//! paper sketches for MetaLeak — mutually distrusting domains must not
//! share any non-root tree node — together with its cost model
//! (stranding, re-hash overhead on growth).

use metaleak_meta::geometry::{NodeId, TreeGeometry};

/// Error raised by the partition planner.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PartitionError {
    /// The requested domains exceed the tree's capacity.
    OutOfCapacity {
        /// Counter blocks requested in total.
        requested: u64,
        /// Counter blocks available.
        available: u64,
    },
}

impl core::fmt::Display for PartitionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PartitionError::OutOfCapacity { requested, available } => {
                write!(f, "domains need {requested} counter blocks, tree covers {available}")
            }
        }
    }
}

impl std::error::Error for PartitionError {}

/// One security domain's slice of the tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DomainSlice {
    /// Domain identifier.
    pub domain: usize,
    /// The subtree root that is private to this domain (its "domain
    /// root", verified directly against on-chip state).
    pub subtree_root: NodeId,
    /// Counter blocks covered.
    pub attached: core::ops::Range<u64>,
    /// Counter blocks requested (<= covered; the rest is stranded).
    pub requested: u64,
}

impl DomainSlice {
    /// Counter blocks allocated but unused by the domain (stranding,
    /// the §IX-C efficiency concern).
    pub fn stranded(&self) -> u64 {
        (self.attached.end - self.attached.start) - self.requested
    }
}

/// A static partition of the integrity tree: each domain receives one
/// or more whole subtrees at a fixed level, so no two domains share
/// any node below the root.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TreePartition {
    /// The level whose subtrees are the allocation granule.
    pub granule_level: u8,
    /// Per-domain slices.
    pub slices: Vec<DomainSlice>,
}

impl TreePartition {
    /// Plans a static partition over `geometry` for domains needing
    /// `demands[i]` counter blocks each. Each domain gets whole
    /// subtrees rooted at the smallest level whose subtree covers its
    /// demand (rounding up — the source of stranding).
    ///
    /// # Errors
    /// [`PartitionError::OutOfCapacity`] when the demands exceed the
    /// tree.
    pub fn plan(geometry: &TreeGeometry, demands: &[u64]) -> Result<Self, PartitionError> {
        let total: u64 = demands.iter().sum();
        if total > geometry.covered() {
            return Err(PartitionError::OutOfCapacity {
                requested: total,
                available: geometry.covered(),
            });
        }
        // Use the leaf level as the granule: fine-grained, worst-case
        // sharing still zero because subtrees are disjoint.
        let granule_level = 0u8;
        let leaf_span = geometry.arity(0) as u64;
        let mut next_leaf = 0u64;
        let mut slices = Vec::with_capacity(demands.len());
        for (domain, &demand) in demands.iter().enumerate() {
            let leaves_needed = demand.div_ceil(leaf_span).max(1);
            if (next_leaf + leaves_needed) > geometry.nodes_at(0) {
                return Err(PartitionError::OutOfCapacity {
                    requested: total,
                    available: geometry.covered(),
                });
            }
            let first = next_leaf;
            next_leaf += leaves_needed;
            // Represent multi-leaf domains by their first subtree root;
            // all leaves in [first, next_leaf) belong to the domain.
            slices.push(DomainSlice {
                domain,
                subtree_root: NodeId::new(granule_level, first),
                attached: first * leaf_span..next_leaf * leaf_span,
                requested: demand,
            });
        }
        Ok(TreePartition { granule_level, slices })
    }

    /// Verifies the isolation invariant: no counter block belongs to
    /// two domains (hence no non-root node is shared).
    pub fn is_isolated(&self) -> bool {
        for (i, a) in self.slices.iter().enumerate() {
            for b in &self.slices[i + 1..] {
                if a.attached.start < b.attached.end && b.attached.start < a.attached.end {
                    return false;
                }
            }
        }
        true
    }

    /// Total stranded counter blocks across domains.
    pub fn total_stranded(&self) -> u64 {
        self.slices.iter().map(DomainSlice::stranded).sum()
    }

    /// The node blocks that must be re-hashed when `domain` grows by
    /// `extra` counter blocks (the chained-rehash overhead of §IX-C:
    /// new leaves plus the path to the domain root).
    pub fn growth_rehash_cost(&self, geometry: &TreeGeometry, domain: usize, extra: u64) -> u64 {
        let slice = &self.slices[domain];
        let leaf_span = geometry.arity(0) as u64;
        let new_leaves = extra.div_ceil(leaf_span);
        // Each new leaf re-hashes itself plus its ancestors up to the
        // root (repositioning can touch the whole path).
        new_leaves * (1 + geometry.levels() as u64 - 1) + slice.requested.div_ceil(leaf_span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geometry() -> TreeGeometry {
        TreeGeometry::sct(16384)
    }

    #[test]
    fn plan_isolates_domains() {
        let g = geometry();
        let p = TreePartition::plan(&g, &[1000, 2000, 500]).unwrap();
        assert_eq!(p.slices.len(), 3);
        assert!(p.is_isolated());
    }

    #[test]
    fn stranding_reflects_rounding() {
        let g = geometry();
        // 33 counter blocks need 2 leaves (32 each) => 31 stranded.
        let p = TreePartition::plan(&g, &[33]).unwrap();
        assert_eq!(p.slices[0].stranded(), 31);
        assert_eq!(p.total_stranded(), 31);
        // Exact multiples strand nothing.
        let q = TreePartition::plan(&g, &[64]).unwrap();
        assert_eq!(q.total_stranded(), 0);
    }

    #[test]
    fn over_capacity_fails() {
        let g = geometry();
        let err = TreePartition::plan(&g, &[20000]).unwrap_err();
        assert!(matches!(err, PartitionError::OutOfCapacity { .. }));
    }

    #[test]
    fn growth_cost_scales_with_extra_coverage() {
        let g = geometry();
        let p = TreePartition::plan(&g, &[1000, 1000]).unwrap();
        let small = p.growth_rehash_cost(&g, 0, 32);
        let large = p.growth_rehash_cost(&g, 0, 3200);
        assert!(large > small * 10);
    }

    #[test]
    fn disjoint_ranges_never_share_leaves() {
        let g = geometry();
        let p = TreePartition::plan(&g, &[100, 100, 100, 100]).unwrap();
        for w in p.slices.windows(2) {
            assert!(w[0].attached.end <= w[1].attached.start);
            // Leaf-aligned boundaries: no leaf straddles two domains.
            assert_eq!(w[0].attached.end % g.arity(0) as u64, 0);
        }
    }
}
