//! The `metaleak` command-line tool: run the attacks and
//! characterizations from one binary.
//!
//! ```console
//! $ cargo run --release --bin metaleak -- covert-t --bits 64
//! $ cargo run --release --bin metaleak -- steal-image --size 48
//! $ cargo run --release --bin metaleak -- matrix
//! ```

use metaleak::casestudy::{run_jpeg_t, run_modinv_t, run_rsa_t};
use metaleak::configs;
use metaleak::prelude::*;
use metaleak_engine::secmem::SecureMemory;
use metaleak_mitigations::analysis::full_matrix;
use metaleak_sim::rng::SimRng;
use metaleak_victims::bignum::BigUint;
use std::process::ExitCode;

const USAGE: &str = "metaleak — metadata side channels in secure processors (ISCA'24 reproduction)

USAGE:
    metaleak <COMMAND> [OPTIONS]

COMMANDS:
    covert-t     run the MetaLeak-T covert channel      [--bits N] [--sgx]
    covert-c     run the MetaLeak-C covert channel      [--symbols N]
    steal-image  image exfiltration case study          [--size N]
    steal-key    RSA exponent recovery case study       [--sgx]
    steal-ops    mbedTLS shift/sub detection case study
    matrix       print the defense-vs-attack matrix
    help         show this message

Options take the form `--name value` (or bare `--sgx`).";

/// Minimal `--flag value` parser.
struct Args {
    items: Vec<String>,
}

impl Args {
    fn parse() -> Self {
        Args { items: std::env::args().skip(1).collect() }
    }

    fn command(&self) -> Option<&str> {
        self.items.first().map(String::as_str)
    }

    fn value(&self, name: &str) -> Option<&str> {
        self.items.windows(2).find(|w| w[0] == format!("--{name}")).map(|w| w[1].as_str())
    }

    fn number(&self, name: &str, default: usize) -> usize {
        self.value(name).and_then(|v| v.parse().ok()).unwrap_or(default)
    }

    fn flag(&self, name: &str) -> bool {
        self.items.iter().any(|a| a == &format!("--{name}"))
    }
}

fn cmd_covert_t(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let bits_n = args.number("bits", 64);
    let (cfg, level, label) = if args.flag("sgx") {
        (configs::sgx_experiment(), 1, "SGX / SIT")
    } else {
        (configs::sct_experiment(), 0, "SCT")
    };
    println!("MetaLeak-T covert channel [{label}], {bits_n} bits ...");
    let mut mem = SecureMemory::new(cfg);
    let channel = CovertChannelT::new(&mut mem, CoreId(0), CoreId(1), level, 100)?;
    let mut rng = SimRng::seed_from(1);
    let bits: Vec<bool> = (0..bits_n).map(|_| rng.chance(0.5)).collect();
    let out = channel.transmit(&mut mem, &bits)?;
    println!(
        "accuracy {:.1}%  ({:.1} bits/Mcycle)",
        out.accuracy(&bits) * 100.0,
        out.bits_per_mcycle()
    );
    Ok(())
}

fn cmd_covert_c(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let symbols_n = args.number("symbols", 32);
    println!("MetaLeak-C covert channel [SCT, 4-bit tree minors], {symbols_n} symbols ...");
    let mut mem = SecureMemory::new(configs::sct_experiment_with_tree_bits(4));
    let mut channel = CovertChannelC::new(&mem, CoreId(0), CoreId(1), 1, 100)?;
    let mut rng = SimRng::seed_from(2);
    let cap = channel.max_symbol() + 1;
    let symbols: Vec<u64> = (0..symbols_n).map(|_| rng.below(cap)).collect();
    let out = channel.transmit(&mut mem, &symbols)?;
    println!(
        "accuracy {:.1}%  ({} symbols decoded)",
        out.accuracy(&symbols) * 100.0,
        out.decoded.len()
    );
    Ok(())
}

fn cmd_steal_image(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let size = args.number("size", 32).clamp(16, 128) / 8 * 8;
    let image = GrayImage::circle(size, size);
    println!("stealing a {size}x{size} image through encode_one_block ...");
    let out = run_jpeg_t(configs::sct_experiment(), &image, 100, 0)?;
    println!("original:\n{}", image.to_ascii(size));
    println!("stolen ({:.1}% mask accuracy, {} windows):", out.mask_accuracy * 100.0, out.windows);
    println!("{}", out.stolen.to_ascii(size));
    Ok(())
}

fn cmd_steal_key(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let key = RsaKey::generate(40, 4242);
    let (cfg, level, label) = if args.flag("sgx") {
        (configs::sgx_experiment(), 1, "SGX / SIT")
    } else {
        (configs::sct_experiment(), 0, "SCT")
    };
    println!("recovering d = {} ({} bits) [{label}] ...", key.d, key.d.bits());
    let out = run_rsa_t(cfg, &key, 100, level)?;
    println!("recovered   {}", out.recovered_exponent);
    println!("bit accuracy {:.1}% over {} iterations", out.bit_accuracy * 100.0, out.windows);
    Ok(())
}

fn cmd_steal_ops(_args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let e = BigUint::from_u64(65537);
    let phi = BigUint::from_u64(25_927_040);
    println!("detecting shift/sub operations of e^-1 mod phi ...");
    let out = run_modinv_t(configs::sct_experiment(), &e, &phi, 100, 0)?;
    println!("detection accuracy {:.1}% over {} ops", out.detection_accuracy * 100.0, out.windows);
    Ok(())
}

fn cmd_matrix() {
    println!("defense vs attack (per the paper's §IX analysis):\n");
    for (defense, attack, eff, why) in full_matrix() {
        println!("{defense:?} vs {attack:?}: {eff:?}\n    {why}");
    }
}

fn main() -> ExitCode {
    let args = Args::parse();
    let result = match args.command() {
        Some("covert-t") => cmd_covert_t(&args),
        Some("covert-c") => cmd_covert_c(&args),
        Some("steal-image") => cmd_steal_image(&args),
        Some("steal-key") => cmd_steal_key(&args),
        Some("steal-ops") => cmd_steal_ops(&args),
        Some("matrix") => {
            cmd_matrix();
            Ok(())
        }
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => {
            eprintln!("unknown command {other:?}\n\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
