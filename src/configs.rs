//! Experiment configurations.
//!
//! The paper simulates a 64 GB memory behind a 256 KB metadata cache
//! (a ~260000:1 footprint-to-cache ratio). Simulating 64 GB of
//! protected state is not tractable here, so the experiment configs
//! scale both sides down together: a 64 MiB protected region behind
//! 8 KB metadata caches preserves the eviction pressure (8192:1) and
//! the number of conflicting tree nodes per cache set that the
//! attacks' eviction sets rely on.

use metaleak_engine::config::{SecureConfig, SecureConfigBuilder};
use metaleak_meta::enc_counter::CounterWidths;
use metaleak_meta::mcache::MetaCacheConfig;
use metaleak_sim::config::CacheConfig;

/// Protected pages used by the experiments (64 MiB).
pub const EXPERIMENT_PAGES: u64 = 16384;

fn scaled_mcache() -> MetaCacheConfig {
    MetaCacheConfig {
        counter: CacheConfig::new(8 * 1024, 4, 2),
        tree: CacheConfig::new(8 * 1024, 4, 2),
    }
}

/// The primary simulated design: split counters + split-counter tree
/// (VAULT-style, Table I), experiment-scaled metadata caches.
pub fn sct_experiment() -> SecureConfig {
    let mut cfg = SecureConfigBuilder::sct(EXPERIMENT_PAGES).build();
    cfg.mcache = scaled_mcache();
    cfg
}

/// The hash-tree design (Bonsai Merkle Tree \[12\]).
pub fn ht_experiment() -> SecureConfig {
    let mut cfg = SecureConfigBuilder::ht(EXPERIMENT_PAGES).build();
    cfg.mcache = scaled_mcache();
    cfg
}

/// The SGX-like design: monolithic 56-bit counters, 8-ary SIT, MEE
/// latency profile (Figure 7).
pub fn sgx_experiment() -> SecureConfig {
    let mut cfg = SecureConfigBuilder::sit(EXPERIMENT_PAGES).build();
    cfg.mcache = scaled_mcache();
    cfg
}

/// SCT with narrowed tree minor counters so MetaLeak-C presets finish
/// in `2^bits` writes. The paper's hardware uses 7-bit tree minors
/// (128-write presets); narrower counters exercise the identical
/// mechanism at lower simulation cost.
pub fn sct_experiment_with_tree_bits(minor_bits: u8) -> SecureConfig {
    let mut cfg = sct_experiment();
    cfg.tree_widths = CounterWidths { minor_bits, mono_bits: 56 };
    cfg
}

#[cfg(test)]
mod tests {
    use super::*;
    use metaleak_meta::tree::TreeKind;

    #[test]
    fn presets_have_expected_shapes() {
        assert_eq!(sct_experiment().tree_kind, TreeKind::SplitCounter);
        assert_eq!(ht_experiment().tree_kind, TreeKind::Hash);
        assert_eq!(sgx_experiment().tree_kind, TreeKind::Sgx);
        assert_eq!(sct_experiment_with_tree_bits(3).tree_widths.minor_bits, 3);
    }

    #[test]
    fn pressure_ratio_is_preserved() {
        let cfg = sct_experiment();
        let footprint = cfg.data_blocks() * 64;
        let cache = cfg.mcache.tree.capacity_bytes as u64;
        assert_eq!(footprint / cache, 8192);
    }
}
