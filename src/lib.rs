//! # metaleak
//!
//! End-to-end reproduction of *MetaLeak: Uncovering Side Channels in
//! Secure Processor Architectures Exploiting Metadata* (ISCA 2024).
//!
//! This facade crate re-exports the whole workspace and adds the
//! end-to-end case studies of the paper's evaluation:
//!
//! - [`metaleak_sim`] — the memory-hierarchy substrate;
//! - [`metaleak_crypto`] — AES-128 / GHASH / SHA-256 and the crypto
//!   engine;
//! - [`metaleak_meta`] — encryption counters, integrity trees and
//!   metadata caches;
//! - [`metaleak_engine`] — the secure memory engine (Figure 5 paths,
//!   Algorithms 1 & 2);
//! - [`metaleak_attacks`] — MetaLeak-T and MetaLeak-C (the paper's
//!   contribution);
//! - [`metaleak_victims`] — the libjpeg / libgcrypt / mbedTLS-style
//!   victims;
//! - [`metaleak_mitigations`] — MIRAGE and tree-partitioning models;
//! - [`casestudy`] — the §VIII experiments;
//! - [`configs`] — ready-made experiment configurations.
//!
//! ```no_run
//! use metaleak::casestudy::run_jpeg_t;
//! use metaleak::configs;
//! use metaleak_victims::jpeg::GrayImage;
//!
//! let image = GrayImage::circle(32, 32);
//! let outcome = run_jpeg_t(configs::sct_experiment(), &image, 100, 0)?;
//! println!("stealing accuracy: {:.1}%", outcome.mask_accuracy * 100.0);
//! # Ok::<(), metaleak_attacks::AttackError>(())
//! ```

#![warn(missing_docs)]

pub mod casestudy;
pub mod configs;

pub use metaleak_attacks as attacks;
pub use metaleak_crypto as crypto;
pub use metaleak_engine as engine;
pub use metaleak_meta as meta;
pub use metaleak_mitigations as mitigations;
pub use metaleak_sim as sim;
pub use metaleak_victims as victims;

/// Convenient glob import for examples and experiments.
pub mod prelude {
    pub use crate::casestudy::*;
    pub use crate::configs;
    pub use metaleak_attacks::{
        CovertChannelC, CovertChannelT, DualPageMonitor, MetaLeakC, MetaLeakT,
    };
    pub use metaleak_engine::prelude::*;
    pub use metaleak_victims::bignum::BigUint;
    pub use metaleak_victims::jpeg::GrayImage;
    pub use metaleak_victims::rsa::RsaKey;
}
