//! Case study §VIII-A1: stealing images from a libjpeg-style encoder
//! with MetaLeak-T (Figure 15).
//!
//! The victim's `encode_one_block` touches the `r` page for zero AC
//! coefficients (Listing 1 line 6) and the `nbits` page for non-zero
//! ones (line 10). The attacker monitors both pages' shared tree nodes
//! with interleaved mEvict+mReload windows (one per coefficient,
//! SGX-Step-style), infers the per-block non-zero masks, and rebuilds
//! the image locally.

use metaleak_attacks::dual::{find_partner_block, victim_touch, DualPageMonitor};
use metaleak_attacks::error::AttackError;
use metaleak_engine::config::SecureConfig;
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_victims::jpeg::{
    encode_image, mask_accuracy, nonzero_masks, reconstruct_from_masks, GrayImage, DCT_SIZE2,
};

/// Result of the image-exfiltration case study.
#[derive(Debug, Clone)]
pub struct JpegTOutcome {
    /// The victim's input image.
    pub original: GrayImage,
    /// Reconstruction from the side-channel-inferred masks.
    pub stolen: GrayImage,
    /// Reconstruction from the ground-truth masks (the paper's
    /// "Oracle" row in Figure 15: instrumentation-level access info).
    pub oracle: GrayImage,
    /// Fraction of zero/non-zero flags inferred correctly (the paper's
    /// stealing accuracy; 94.3% in their SCT setup).
    pub mask_accuracy: f64,
    /// PSNR of the stolen image against the oracle reconstruction.
    pub psnr_vs_oracle: f64,
    /// Observation windows used (one per AC coefficient).
    pub windows: usize,
}

/// Runs the attack. `victim_r_page` positions the victim's `r`
/// variable; the `nbits` page is co-located automatically. `level` is
/// the shared tree level (0 for SCT as in §VIII-A1).
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_jpeg_t(
    config: SecureConfig,
    image: &GrayImage,
    victim_r_page: u64,
    level: u8,
) -> Result<JpegTOutcome, AttackError> {
    run_jpeg_t_on(&mut SecureMemory::new(config), image, victim_r_page, level)
}

/// [`run_jpeg_t`] against a caller-provided memory — the
/// snapshot-sharing form: warm one `SecureMemory` per configuration,
/// fork it per image instead of re-simulating construction.
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_jpeg_t_on(
    mem: &mut SecureMemory,
    image: &GrayImage,
    victim_r_page: u64,
    level: u8,
) -> Result<JpegTOutcome, AttackError> {
    let spy = CoreId(0);
    let victim = CoreId(1);
    // Victim variable placement (the attacker steered this via the
    // per-core free-list technique; see `examples/page_steering.rs`).
    let r_block = victim_r_page * 64;
    let nbits_block = find_partner_block(mem, r_block, level).ok_or(AttackError::NoProbeBlock)?;
    let dual = DualPageMonitor::new(mem, spy, r_block, nbits_block, level)?;

    // Ground truth: the victim's real encoding pass.
    let encodings = encode_image(image);
    let truth_masks = nonzero_masks(&encodings);

    // The attack: one window per coefficient event.
    let mut inferred_masks = vec![[false; DCT_SIZE2]; encodings.len()];
    let mut windows = 0;
    for (bi, enc) in encodings.iter().enumerate() {
        for ev in &enc.events {
            let sample = dual.window(mem, spy, |m| {
                if ev.nonzero {
                    victim_touch(m, victim, nbits_block); // Listing 1 line 10
                } else {
                    victim_touch(m, victim, r_block); // Listing 1 line 6
                }
            })?;
            // Decode: the `nbits` monitor firing means non-zero.
            inferred_masks[bi][ev.k] = sample.b_seen && !sample.a_seen;
            windows += 1;
        }
    }

    let acc = mask_accuracy(&inferred_masks, &truth_masks);
    let stolen = reconstruct_from_masks(&inferred_masks, image.width, image.height);
    let oracle = reconstruct_from_masks(&truth_masks, image.width, image.height);
    let psnr_vs_oracle = stolen.psnr(&oracle);
    Ok(JpegTOutcome {
        original: image.clone(),
        stolen,
        oracle,
        mask_accuracy: acc,
        psnr_vs_oracle,
        windows,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn steals_a_small_image_with_high_accuracy() {
        let image = GrayImage::circle(16, 16);
        let out = run_jpeg_t(configs::sct_experiment(), &image, 100, 0).unwrap();
        assert_eq!(out.windows, 4 * 63);
        assert!(out.mask_accuracy >= 0.9, "stealing accuracy {} below 0.9", out.mask_accuracy);
        // The stolen reconstruction must closely track the oracle.
        assert!(out.psnr_vs_oracle > 20.0, "psnr {}", out.psnr_vs_oracle);
    }
}
