//! Case study §VIII-A2: recovering the zero elements of the entropy
//! blocks through MetaLeak-C.
//!
//! The `r++` path of Listing 1 *writes* the `r` variable for every
//! zero coefficient. The attacker shares a tree counter with `r`'s
//! page at the 2nd level of the tree, presets it one writeback short
//! of saturation, and detects the victim's write through the overflow
//! storm (97.2% zero-element recovery in the paper).

use metaleak_attacks::error::AttackError;
use metaleak_attacks::metaleak_c::{victim_write, MetaLeakC};
use metaleak_engine::config::SecureConfig;
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_victims::jpeg::{encode_image, GrayImage};

/// Result of the zero-element-recovery case study.
#[derive(Debug, Clone)]
pub struct JpegCOutcome {
    /// Fraction of coefficient events classified correctly
    /// (zero/write vs non-zero/no-write).
    pub zero_recovery_accuracy: f64,
    /// Events observed.
    pub windows: usize,
    /// Ground-truth zero events.
    pub true_zeros: usize,
}

/// Runs the attack at tree `level` (the paper uses level 2; level 1
/// exercises the same mechanism faster). `max_events` caps the
/// simulated coefficient windows (0 = all).
///
/// # Errors
/// Propagates attack-planning failures (including
/// [`AttackError::OverflowImpractical`] for wide counters).
pub fn run_jpeg_c(
    config: SecureConfig,
    image: &GrayImage,
    victim_r_page: u64,
    level: u8,
    max_events: usize,
) -> Result<JpegCOutcome, AttackError> {
    run_jpeg_c_on(&mut SecureMemory::new(config), image, victim_r_page, level, max_events)
}

/// [`run_jpeg_c`] against a caller-provided memory — the
/// snapshot-sharing form used by the table binaries.
///
/// # Errors
/// Propagates attack-planning failures (including
/// [`AttackError::OverflowImpractical`] for wide counters).
pub fn run_jpeg_c_on(
    mem: &mut SecureMemory,
    image: &GrayImage,
    victim_r_page: u64,
    level: u8,
    max_events: usize,
) -> Result<JpegCOutcome, AttackError> {
    let spy = CoreId(0);
    let victim = CoreId(1);
    let r_block = victim_r_page * 64;
    let mut attack = MetaLeakC::new(mem, r_block, level)?;

    let encodings = encode_image(image);
    let events: Vec<bool> =
        encodings.iter().flat_map(|e| e.events.iter().map(|ev| !ev.nonzero)).collect();
    let events = if max_events > 0 && events.len() > max_events {
        events[..max_events].to_vec()
    } else {
        events
    };

    let mut correct = 0usize;
    let mut true_zeros = 0usize;
    for (i, &is_zero) in events.iter().enumerate() {
        true_zeros += is_zero as usize;
        let detected = attack.detect_write(mem, spy, |m| {
            if is_zero {
                // Listing 1 line 6: the victim writes `r`.
                victim_write(m, victim, r_block, level, i as u8);
            }
        })?;
        correct += (detected == is_zero) as usize;
    }
    Ok(JpegCOutcome {
        zero_recovery_accuracy: correct as f64 / events.len().max(1) as f64,
        windows: events.len(),
        true_zeros,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn recovers_zero_elements() {
        let image = GrayImage::glyphs(16, 16, 5);
        let cfg = configs::sct_experiment_with_tree_bits(3);
        let out = run_jpeg_c(cfg, &image, 100, 1, 40).unwrap();
        assert_eq!(out.windows, 40);
        assert!(
            out.zero_recovery_accuracy >= 0.9,
            "zero recovery {} below 0.9",
            out.zero_recovery_accuracy
        );
        assert!(out.true_zeros > 0, "test image must have zero coefficients");
    }
}
