//! End-to-end case studies of §VIII: each drives a real victim
//! workload through the secure-memory simulator while the MetaLeak
//! attack monitors it, and reports the paper's accuracy metrics.

pub mod jpeg_c;
pub mod jpeg_t;
pub mod modinv_t;
pub mod rsa_t;

pub use jpeg_c::{run_jpeg_c, run_jpeg_c_on, JpegCOutcome};
pub use jpeg_t::{run_jpeg_t, run_jpeg_t_on, JpegTOutcome};
pub use modinv_t::{run_modinv_t, run_modinv_t_on, ModInvTOutcome};
pub use rsa_t::{run_rsa_t, run_rsa_t_on, RsaTOutcome};
