//! Case study §VIII-B1: recovering the RSA private exponent from the
//! square-and-multiply page-fetch sequence of a libgcrypt-style
//! decryption (Figure 16).
//!
//! `_gcry_mpih_sqr_n_basecase` and `_gcry_mpih_mul_karatsuba_case`
//! live on separate code pages; the attacker shares integrity-tree
//! nodes with both, steps the victim one exponent bit at a time
//! (SGX-Step model), and decodes each bit from whether the multiply
//! page was fetched.

use metaleak_attacks::dual::{find_partner_block, victim_touch, DualPageMonitor};
use metaleak_attacks::error::AttackError;
use metaleak_engine::config::SecureConfig;
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_victims::bignum::BigUint;
use metaleak_victims::rsa::{
    exponent_bit_accuracy, recover_exponent_from_windows, ModExpOp, RsaKey,
};

/// Result of the exponent-recovery case study.
#[derive(Debug, Clone)]
pub struct RsaTOutcome {
    /// The victim's private exponent (ground truth).
    pub true_exponent: BigUint,
    /// The exponent as recovered by the spy.
    pub recovered_exponent: BigUint,
    /// Bit accuracy (91.2% SGX / 95.1% SCT in the paper).
    pub bit_accuracy: f64,
    /// Observation windows (one per exponent bit).
    pub windows: usize,
    /// Per-window raw observations `(square_seen, multiply_seen)`.
    pub observations: Vec<(bool, bool)>,
}

/// Runs the attack. `square_page` positions the victim's square
/// routine; the multiply page is co-located automatically. `level` is
/// the shared tree level (0 for SCT; 1 for SGX where L0 is unusable).
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_rsa_t(
    config: SecureConfig,
    key: &RsaKey,
    square_page: u64,
    level: u8,
) -> Result<RsaTOutcome, AttackError> {
    run_rsa_t_on(&mut SecureMemory::new(config), key, square_page, level)
}

/// [`run_rsa_t`] against a caller-provided memory — the
/// snapshot-sharing form used by the figure binaries.
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_rsa_t_on(
    mem: &mut SecureMemory,
    key: &RsaKey,
    square_page: u64,
    level: u8,
) -> Result<RsaTOutcome, AttackError> {
    let spy = CoreId(0);
    let victim = CoreId(1);
    let square_block = square_page * 64;
    let multiply_block =
        find_partner_block(mem, square_block, level).ok_or(AttackError::NoProbeBlock)?;
    let dual = DualPageMonitor::new(mem, spy, square_block, multiply_block, level)?;

    // The victim decrypts; its real op trace drives the simulated
    // instruction fetches, one exponent-bit iteration per window
    // (SGX-Step interrupts every iteration, §VIII attack setup).
    let ciphertext = key.encrypt(&BigUint::from_u64(0x5EC2E7));
    let trace = key.decrypt_trace(&ciphertext);
    let mut iterations: Vec<bool> = Vec::new(); // bit value per iteration
    let mut i = 0;
    while i < trace.len() {
        debug_assert_eq!(trace[i], ModExpOp::Square);
        let one = matches!(trace.get(i + 1), Some(ModExpOp::Multiply));
        iterations.push(one);
        i += if one { 2 } else { 1 };
    }

    let mut observations = Vec::with_capacity(iterations.len());
    for &bit in &iterations {
        let sample = dual.window(mem, spy, |m| {
            victim_touch(m, victim, square_block); // square always runs
            if bit {
                victim_touch(m, victim, multiply_block);
            }
        })?;
        observations.push((sample.a_seen, sample.b_seen));
    }

    let recovered = recover_exponent_from_windows(&observations);
    let bit_accuracy = exponent_bit_accuracy(&recovered, &key.d);
    Ok(RsaTOutcome {
        true_exponent: key.d.clone(),
        recovered_exponent: recovered,
        bit_accuracy,
        windows: iterations.len(),
        observations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn recovers_exponent_bits_under_sct() {
        let key = RsaKey::generate(32, 2024);
        let out = run_rsa_t(configs::sct_experiment(), &key, 100, 0).unwrap();
        assert_eq!(out.windows, key.d.bits());
        assert!(out.bit_accuracy >= 0.9, "bit accuracy {} below 0.9", out.bit_accuracy);
    }

    #[test]
    fn works_under_sgx_at_level_1() {
        let key = RsaKey::generate(24, 7);
        let out = run_rsa_t(configs::sgx_experiment(), &key, 100, 1).unwrap();
        assert!(out.bit_accuracy >= 0.85, "SGX bit accuracy {} below 0.85", out.bit_accuracy);
    }
}
