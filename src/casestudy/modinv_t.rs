//! Case study §VIII-B2: observing the shift/sub sequence of the
//! mbedTLS-style private-key loading (Figure 17).
//!
//! `mbedtls_mpi_shift_r` and `mbedtls_mpi_sub_mpi` live on two code
//! pages under different sub-trees; the attacker monitors both with
//! mEvict+mReload and classifies each operation of the modular
//! inversion `d = e^{-1} mod (p-1)(q-1)` (90.7% detection accuracy in
//! the paper's SGX setup).

use metaleak_attacks::dual::{find_partner_block, victim_touch, DualPageMonitor};
use metaleak_attacks::error::AttackError;
use metaleak_engine::config::SecureConfig;
use metaleak_engine::secmem::SecureMemory;
use metaleak_sim::addr::CoreId;
use metaleak_victims::bignum::BigUint;
use metaleak_victims::modinv::{inversion_trace, InvOp};

/// Result of the shift/sub detection case study.
#[derive(Debug, Clone)]
pub struct ModInvTOutcome {
    /// Ground-truth operation sequence.
    pub truth: Vec<InvOp>,
    /// Operations as classified by the spy.
    pub observed: Vec<InvOp>,
    /// Per-operation detection accuracy.
    pub detection_accuracy: f64,
    /// Observation windows (one per operation).
    pub windows: usize,
}

/// Runs the attack on the inversion `e^{-1} mod phi`. `shift_page`
/// positions the victim's shift routine; sub is co-located
/// automatically.
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_modinv_t(
    config: SecureConfig,
    e: &BigUint,
    phi: &BigUint,
    shift_page: u64,
    level: u8,
) -> Result<ModInvTOutcome, AttackError> {
    run_modinv_t_on(&mut SecureMemory::new(config), e, phi, shift_page, level)
}

/// [`run_modinv_t`] against a caller-provided memory — the
/// snapshot-sharing form used by the figure binaries.
///
/// # Errors
/// Propagates attack-planning failures.
pub fn run_modinv_t_on(
    mem: &mut SecureMemory,
    e: &BigUint,
    phi: &BigUint,
    shift_page: u64,
    level: u8,
) -> Result<ModInvTOutcome, AttackError> {
    let spy = CoreId(0);
    let victim = CoreId(1);
    let shift_block = shift_page * 64;
    let sub_block = find_partner_block(mem, shift_block, level).ok_or(AttackError::NoProbeBlock)?;
    let dual = DualPageMonitor::new(mem, spy, shift_block, sub_block, level)?;

    let truth = inversion_trace(e, phi);
    let mut observed = Vec::with_capacity(truth.len());
    for &op in &truth {
        let sample = dual.window(mem, spy, |m| match op {
            InvOp::ShiftR => victim_touch(m, victim, shift_block),
            InvOp::Sub => victim_touch(m, victim, sub_block),
        })?;
        // Classify by which page fired; tie-break on raw latency.
        let decoded = match (sample.a_seen, sample.b_seen) {
            (true, false) => InvOp::ShiftR,
            (false, true) => InvOp::Sub,
            _ => {
                if sample.a_latency <= sample.b_latency {
                    InvOp::ShiftR
                } else {
                    InvOp::Sub
                }
            }
        };
        observed.push(decoded);
    }
    let detection_accuracy = metaleak_victims::accuracy_of(&observed, &truth);
    Ok(ModInvTOutcome { windows: truth.len(), truth, observed, detection_accuracy })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs;

    #[test]
    fn detects_shift_and_sub_operations() {
        let e = BigUint::from_u64(65537);
        let phi = BigUint::from_u64(3_233_040); // an RSA-style even phi
        let out = run_modinv_t(configs::sct_experiment(), &e, &phi, 100, 0).unwrap();
        assert!(out.windows > 10, "inversion must take many ops");
        assert!(
            out.detection_accuracy >= 0.9,
            "detection accuracy {} below 0.9",
            out.detection_accuracy
        );
        // Both op kinds occur and are detected.
        assert!(out.observed.contains(&InvOp::ShiftR));
        assert!(out.observed.contains(&InvOp::Sub));
    }
}
